"""Unit tests for the four model runtimes (coordinator, simultaneous,
one-way, blackboard)."""

import pytest

from repro.comm.blackboard import BlackboardRuntime
from repro.comm.coordinator import CoordinatorRuntime
from repro.comm.encoding import edge_bits
from repro.comm.oneway import (
    OneWayTranscript,
    run_extended_oneway,
    run_oneway_chain,
)
from repro.comm.players import Player, make_players
from repro.comm.randomness import SharedRandomness
from repro.comm.simultaneous import run_simultaneous
from repro.graphs.generators import gnd
from repro.graphs.partition import partition_disjoint


def three_players() -> list[Player]:
    return [
        Player(0, 10, [(0, 1), (1, 2)]),
        Player(1, 10, [(2, 3)]),
        Player(2, 10, [(4, 5), (5, 6)]),
    ]


class TestCoordinatorRuntime:
    def test_collect_polls_everyone(self):
        rt = CoordinatorRuntime(three_players(), SharedRandomness(1))
        sizes = rt.collect(
            compute=lambda p: p.num_edges, response_bits=lambda _: 4
        )
        assert sizes == [2, 1, 2]

    def test_collect_charges_request_and_response(self):
        rt = CoordinatorRuntime(three_players(), SharedRandomness(1))
        rt.collect(compute=lambda p: 0, response_bits=lambda _: 4)
        # 3 players x (1 request + 4 response).
        assert rt.ledger.total_bits == 15
        assert rt.ledger.rounds == 3

    def test_collect_zero_request_bits(self):
        rt = CoordinatorRuntime(three_players(), SharedRandomness(1))
        rt.collect(
            compute=lambda p: 0, response_bits=lambda _: 2, request_bits=0
        )
        assert rt.ledger.total_bits == 6

    def test_collect_from_single_player(self):
        rt = CoordinatorRuntime(three_players(), SharedRandomness(1))
        result = rt.collect_from(
            1, compute=lambda p: p.num_edges, response_bits=lambda _: 3
        )
        assert result == 1
        assert rt.ledger.total_bits == 4

    def test_broadcast_charges_k_copies(self):
        rt = CoordinatorRuntime(three_players(), SharedRandomness(1))
        rt.broadcast(5)
        assert rt.ledger.downstream_bits == 15

    def test_empty_players_rejected(self):
        with pytest.raises(ValueError):
            CoordinatorRuntime([], SharedRandomness(0))

    def test_mismatched_universe_rejected(self):
        players = [Player(0, 10, []), Player(1, 20, [])]
        with pytest.raises(ValueError):
            CoordinatorRuntime(players)

    def test_scope_labels(self):
        rt = CoordinatorRuntime(three_players(), SharedRandomness(1))
        with rt.scope("phase"):
            rt.collect(compute=lambda p: 0, response_bits=lambda _: 1)
        assert rt.ledger.summary().bits_by_label["phase"] == 6


class TestSimultaneousRuntime:
    def test_one_message_per_player(self):
        run = run_simultaneous(
            three_players(),
            message_fn=lambda p, _: p.num_edges,
            message_bits=lambda m: m,
            referee_fn=lambda messages, _: sum(messages),
        )
        assert run.output == 5
        assert run.messages == [2, 1, 2]
        assert run.total_bits == 5
        assert run.ledger.rounds == 1

    def test_shared_randomness_passed(self):
        shared = SharedRandomness(7)
        run = run_simultaneous(
            three_players(),
            message_fn=lambda p, s: s.seed,
            message_bits=lambda _: 1,
            referee_fn=lambda messages, s: messages,
            shared=shared,
        )
        assert run.output == [7, 7, 7]

    def test_max_message_bits(self):
        run = run_simultaneous(
            three_players(),
            message_fn=lambda p, _: p.num_edges,
            message_bits=lambda m: m * 10,
            referee_fn=lambda messages, _: None,
        )
        assert run.max_message_bits() == 20

    def test_empty_players_rejected(self):
        with pytest.raises(ValueError):
            run_simultaneous(
                [], lambda p, s: 0, lambda m: 1, lambda ms, s: None
            )


class TestExtendedOneWay:
    def test_transcript_charged(self):
        players = three_players()

        def conversation(alice, bob, shared, transcript):
            transcript.append(0, "hello", 5)
            transcript.append(1, "world", 7)

        def charlie_output(charlie, transcript, shared):
            return transcript.payloads()

        run = run_extended_oneway(
            players[0], players[1], players[2], conversation, charlie_output
        )
        assert run.output == ["hello", "world"]
        assert run.total_bits == 12
        assert run.ledger.total_bits == 12

    def test_charlie_sees_own_input(self):
        players = three_players()

        def conversation(alice, bob, shared, transcript):
            transcript.append(0, sorted(alice.edges), 16)

        def charlie_output(charlie, transcript, shared):
            return charlie.num_edges

        run = run_extended_oneway(
            players[0], players[1], players[2], conversation, charlie_output
        )
        assert run.output == 2

    def test_empty_transcript(self):
        transcript = OneWayTranscript()
        assert transcript.total_bits == 0
        assert transcript.payloads() == []


class TestOneWayChain:
    def test_state_forwarded_in_order(self):
        players = three_players()
        run = run_oneway_chain(
            players,
            initial_state=[],
            step=lambda p, state, _: state + [p.player_id],
            state_bits=lambda state: len(state),
            finalize=lambda p, state, _: state + [p.player_id],
        )
        assert run.output == [0, 1, 2]

    def test_bits_charged_per_hop(self):
        players = three_players()
        run = run_oneway_chain(
            players,
            initial_state=0,
            step=lambda p, state, _: state + p.num_edges,
            state_bits=lambda _: 8,
            finalize=lambda p, state, _: state,
        )
        assert run.total_bits == 16  # two forwarding hops

    def test_single_player_rejected(self):
        with pytest.raises(ValueError):
            run_oneway_chain(
                [Player(0, 5, [])],
                initial_state=None,
                step=lambda p, s, _: s,
                state_bits=lambda _: 1,
                finalize=lambda p, s, _: s,
            )


class TestBlackboard:
    def test_post_charged_once(self):
        rt = BlackboardRuntime(three_players(), SharedRandomness(1))
        rt.post(0, "payload", 9)
        assert rt.ledger.total_bits == 9
        assert rt.board == [(0, "payload")]

    def test_post_edges_deduplicates(self):
        graph = gnd(30, 4.0, seed=1)
        # All-to-all duplication: every player holds every edge.
        from repro.graphs.partition import partition_all_to_all

        partition = partition_all_to_all(graph, 3)
        rt = BlackboardRuntime(make_players(partition), SharedRandomness(2))
        posted = rt.post_edges_in_turns(
            harvest=lambda p: sorted(p.edges),
            per_edge_bits=edge_bits(30),
        )
        assert posted == graph.edge_set()
        # Charged once per distinct edge, not once per player copy.
        assert rt.ledger.total_bits == graph.num_edges * edge_bits(30)

    def test_post_edges_cap(self):
        graph = gnd(30, 4.0, seed=1)
        partition = partition_disjoint(graph, 3, seed=3)
        rt = BlackboardRuntime(make_players(partition), SharedRandomness(2))
        posted = rt.post_edges_in_turns(
            harvest=lambda p: sorted(p.edges),
            per_edge_bits=edge_bits(30),
            cap=5,
        )
        assert len(posted) == 5

    def test_empty_players_rejected(self):
        with pytest.raises(ValueError):
            BlackboardRuntime([])

    def test_board_rows_track_posted_edges(self):
        rt = BlackboardRuntime(three_players(), SharedRandomness(1))
        rt.post_edges_in_turns(
            harvest=lambda p: sorted(p.edges), per_edge_bits=4
        )
        assert rt.board_rows[0] >> 1 & 1  # (0, 1) posted
        assert rt.board_rows[1] >> 0 & 1  # symmetric bit
        assert not rt.board_rows[7]

    def test_rows_form_matches_edge_form(self):
        """post_rows_in_turns == post_edges_in_turns on sorted harvests."""
        graph = gnd(40, 5.0, seed=8)
        from repro.graphs.partition import partition_with_duplication

        partition = partition_with_duplication(graph, 4, seed=9)
        for cap in (None, 0, 7, 10 ** 6):
            edge_rt = BlackboardRuntime(
                make_players(partition), SharedRandomness(2)
            )
            posted_edges = edge_rt.post_edges_in_turns(
                harvest=lambda p: p.sorted_edges(),
                per_edge_bits=edge_bits(40), cap=cap,
            )
            rows_rt = BlackboardRuntime(
                make_players(partition), SharedRandomness(2)
            )
            posted_rows = rows_rt.post_rows_in_turns(
                harvest_rows=lambda p: p.adjacency_rows(),
                per_edge_bits=edge_bits(40), cap=cap,
            )
            assert set(posted_rows) == posted_edges
            assert rows_rt.board == edge_rt.board  # same payload order
            assert rows_rt.board_rows == edge_rt.board_rows
            assert rows_rt.ledger.summary() == edge_rt.ledger.summary()

    def test_rows_and_edge_forms_match_set_reference(self):
        """Both forms are pinned to the pre-rows set-dedup loop."""
        from repro.comm.reference import post_edges_in_turns_reference
        from repro.graphs.partition import partition_with_duplication

        graph = gnd(35, 4.0, seed=10)
        partition = partition_with_duplication(graph, 3, seed=11)
        for cap in (None, 5, 11):
            ref_rt = BlackboardRuntime(
                make_players(partition), SharedRandomness(3)
            )
            ref_posted = post_edges_in_turns_reference(
                ref_rt, lambda p: p.sorted_edges(),
                per_edge_bits=edge_bits(35), cap=cap,
            )
            new_rt = BlackboardRuntime(
                make_players(partition), SharedRandomness(3)
            )
            new_posted = new_rt.post_edges_in_turns(
                harvest=lambda p: p.sorted_edges(),
                per_edge_bits=edge_bits(35), cap=cap,
            )
            assert new_posted == ref_posted
            assert new_rt.board == ref_rt.board
            assert new_rt.ledger.summary() == ref_rt.ledger.summary()


class TestBlackboardCapHandling:
    """Edge cases of the global posted-edge cap (PR 4 satellite)."""

    def _partition(self):
        graph = gnd(30, 4.0, seed=1)
        from repro.graphs.partition import partition_all_to_all

        return partition_all_to_all(graph, 3), graph

    def test_cap_zero_posts_nothing_and_charges_nothing(self):
        partition, _ = self._partition()
        rt = BlackboardRuntime(make_players(partition), SharedRandomness(2))
        posted = rt.post_edges_in_turns(
            harvest=lambda p: p.sorted_edges(),
            per_edge_bits=edge_bits(30), cap=0,
        )
        assert posted == set()
        assert rt.ledger.total_bits == 0
        assert rt.ledger.rounds == 0
        assert rt.board == []

    def test_cap_hit_on_player_boundary_stops_all_charges(self):
        """Players after the cap-filling one are not charged a round."""
        partition, _ = self._partition()
        first_view = sorted(make_players(partition)[0].edges)
        cap = len(first_view)  # player 0 fills the cap exactly
        rt = BlackboardRuntime(make_players(partition), SharedRandomness(2))
        posted = rt.post_edges_in_turns(
            harvest=lambda p: p.sorted_edges(),
            per_edge_bits=edge_bits(30), cap=cap,
        )
        assert len(posted) == cap
        assert rt.ledger.rounds == 1  # only player 0's post
        assert [pid for pid, _ in rt.board] == [0]

    def test_duplicate_heavy_harvest_charges_distinct_edges_only(self):
        """In-harvest duplicates are neither charged nor cap-counted."""
        players = three_players()
        rt = BlackboardRuntime(players, SharedRandomness(2))
        noisy = lambda p: [  # noqa: E731 - tiny stub harvest
            (0, 1), (0, 1), (1, 2), (0, 1), (1, 2)
        ]
        posted = rt.post_edges_in_turns(
            harvest=noisy, per_edge_bits=8, cap=2,
        )
        assert posted == {(0, 1), (1, 2)}
        # One round (player 0 posts both distinct edges), 2 * 8 bits —
        # the historical loop would have truncated at the duplicate and
        # charged it.
        assert rt.ledger.rounds == 1
        assert rt.ledger.total_bits == 16

    def test_zero_fresh_players_are_never_charged(self):
        partition, graph = self._partition()
        rt = BlackboardRuntime(make_players(partition), SharedRandomness(2))
        rt.post_edges_in_turns(
            harvest=lambda p: p.sorted_edges(),
            per_edge_bits=edge_bits(30),
        )
        # All-to-all duplication: players 1 and 2 have nothing fresh.
        assert rt.ledger.rounds == 1
        assert rt.ledger.player_bits(1) == 0
        assert rt.ledger.player_bits(2) == 0
        assert rt.ledger.total_bits == graph.num_edges * edge_bits(30)

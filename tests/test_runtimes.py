"""Unit tests for the four model runtimes (coordinator, simultaneous,
one-way, blackboard)."""

import pytest

from repro.comm.blackboard import BlackboardRuntime
from repro.comm.coordinator import CoordinatorRuntime
from repro.comm.encoding import edge_bits
from repro.comm.oneway import (
    OneWayTranscript,
    run_extended_oneway,
    run_oneway_chain,
)
from repro.comm.players import Player, make_players
from repro.comm.randomness import SharedRandomness
from repro.comm.simultaneous import run_simultaneous
from repro.graphs.generators import gnd
from repro.graphs.partition import partition_disjoint


def three_players() -> list[Player]:
    return [
        Player(0, 10, [(0, 1), (1, 2)]),
        Player(1, 10, [(2, 3)]),
        Player(2, 10, [(4, 5), (5, 6)]),
    ]


class TestCoordinatorRuntime:
    def test_collect_polls_everyone(self):
        rt = CoordinatorRuntime(three_players(), SharedRandomness(1))
        sizes = rt.collect(
            compute=lambda p: p.num_edges, response_bits=lambda _: 4
        )
        assert sizes == [2, 1, 2]

    def test_collect_charges_request_and_response(self):
        rt = CoordinatorRuntime(three_players(), SharedRandomness(1))
        rt.collect(compute=lambda p: 0, response_bits=lambda _: 4)
        # 3 players x (1 request + 4 response).
        assert rt.ledger.total_bits == 15
        assert rt.ledger.rounds == 3

    def test_collect_zero_request_bits(self):
        rt = CoordinatorRuntime(three_players(), SharedRandomness(1))
        rt.collect(
            compute=lambda p: 0, response_bits=lambda _: 2, request_bits=0
        )
        assert rt.ledger.total_bits == 6

    def test_collect_from_single_player(self):
        rt = CoordinatorRuntime(three_players(), SharedRandomness(1))
        result = rt.collect_from(
            1, compute=lambda p: p.num_edges, response_bits=lambda _: 3
        )
        assert result == 1
        assert rt.ledger.total_bits == 4

    def test_broadcast_charges_k_copies(self):
        rt = CoordinatorRuntime(three_players(), SharedRandomness(1))
        rt.broadcast(5)
        assert rt.ledger.downstream_bits == 15

    def test_empty_players_rejected(self):
        with pytest.raises(ValueError):
            CoordinatorRuntime([], SharedRandomness(0))

    def test_mismatched_universe_rejected(self):
        players = [Player(0, 10, []), Player(1, 20, [])]
        with pytest.raises(ValueError):
            CoordinatorRuntime(players)

    def test_scope_labels(self):
        rt = CoordinatorRuntime(three_players(), SharedRandomness(1))
        with rt.scope("phase"):
            rt.collect(compute=lambda p: 0, response_bits=lambda _: 1)
        assert rt.ledger.summary().bits_by_label["phase"] == 6


class TestSimultaneousRuntime:
    def test_one_message_per_player(self):
        run = run_simultaneous(
            three_players(),
            message_fn=lambda p, _: p.num_edges,
            message_bits=lambda m: m,
            referee_fn=lambda messages, _: sum(messages),
        )
        assert run.output == 5
        assert run.messages == [2, 1, 2]
        assert run.total_bits == 5
        assert run.ledger.rounds == 1

    def test_shared_randomness_passed(self):
        shared = SharedRandomness(7)
        run = run_simultaneous(
            three_players(),
            message_fn=lambda p, s: s.seed,
            message_bits=lambda _: 1,
            referee_fn=lambda messages, s: messages,
            shared=shared,
        )
        assert run.output == [7, 7, 7]

    def test_max_message_bits(self):
        run = run_simultaneous(
            three_players(),
            message_fn=lambda p, _: p.num_edges,
            message_bits=lambda m: m * 10,
            referee_fn=lambda messages, _: None,
        )
        assert run.max_message_bits() == 20

    def test_empty_players_rejected(self):
        with pytest.raises(ValueError):
            run_simultaneous(
                [], lambda p, s: 0, lambda m: 1, lambda ms, s: None
            )


class TestExtendedOneWay:
    def test_transcript_charged(self):
        players = three_players()

        def conversation(alice, bob, shared, transcript):
            transcript.append(0, "hello", 5)
            transcript.append(1, "world", 7)

        def charlie_output(charlie, transcript, shared):
            return transcript.payloads()

        run = run_extended_oneway(
            players[0], players[1], players[2], conversation, charlie_output
        )
        assert run.output == ["hello", "world"]
        assert run.total_bits == 12
        assert run.ledger.total_bits == 12

    def test_charlie_sees_own_input(self):
        players = three_players()

        def conversation(alice, bob, shared, transcript):
            transcript.append(0, sorted(alice.edges), 16)

        def charlie_output(charlie, transcript, shared):
            return charlie.num_edges

        run = run_extended_oneway(
            players[0], players[1], players[2], conversation, charlie_output
        )
        assert run.output == 2

    def test_empty_transcript(self):
        transcript = OneWayTranscript()
        assert transcript.total_bits == 0
        assert transcript.payloads() == []


class TestOneWayChain:
    def test_state_forwarded_in_order(self):
        players = three_players()
        run = run_oneway_chain(
            players,
            initial_state=[],
            step=lambda p, state, _: state + [p.player_id],
            state_bits=lambda state: len(state),
            finalize=lambda p, state, _: state + [p.player_id],
        )
        assert run.output == [0, 1, 2]

    def test_bits_charged_per_hop(self):
        players = three_players()
        run = run_oneway_chain(
            players,
            initial_state=0,
            step=lambda p, state, _: state + p.num_edges,
            state_bits=lambda _: 8,
            finalize=lambda p, state, _: state,
        )
        assert run.total_bits == 16  # two forwarding hops

    def test_single_player_rejected(self):
        with pytest.raises(ValueError):
            run_oneway_chain(
                [Player(0, 5, [])],
                initial_state=None,
                step=lambda p, s, _: s,
                state_bits=lambda _: 1,
                finalize=lambda p, s, _: s,
            )


class TestBlackboard:
    def test_post_charged_once(self):
        rt = BlackboardRuntime(three_players(), SharedRandomness(1))
        rt.post(0, "payload", 9)
        assert rt.ledger.total_bits == 9
        assert rt.board == [(0, "payload")]

    def test_post_edges_deduplicates(self):
        graph = gnd(30, 4.0, seed=1)
        # All-to-all duplication: every player holds every edge.
        from repro.graphs.partition import partition_all_to_all

        partition = partition_all_to_all(graph, 3)
        rt = BlackboardRuntime(make_players(partition), SharedRandomness(2))
        posted = rt.post_edges_in_turns(
            harvest=lambda p: sorted(p.edges),
            per_edge_bits=edge_bits(30),
        )
        assert posted == graph.edge_set()
        # Charged once per distinct edge, not once per player copy.
        assert rt.ledger.total_bits == graph.num_edges * edge_bits(30)

    def test_post_edges_cap(self):
        graph = gnd(30, 4.0, seed=1)
        partition = partition_disjoint(graph, 3, seed=3)
        rt = BlackboardRuntime(make_players(partition), SharedRandomness(2))
        posted = rt.post_edges_in_turns(
            harvest=lambda p: sorted(p.edges),
            per_edge_bits=edge_bits(30),
            cap=5,
        )
        assert len(posted) == 5

    def test_empty_players_rejected(self):
        with pytest.raises(ValueError):
            BlackboardRuntime([])

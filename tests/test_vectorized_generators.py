"""The vectorized generation plane is draw-for-draw the scalar one.

The contract (module docstring of :mod:`repro.graphs.generators`): the
``vectorized`` knob on ``gnp``/``gnd``, ``tripartite_mu`` and
``powerlaw_host`` only trades implementations, never outputs — the
sampled edge set is a function of the seed alone, identical across
{scalar, vectorized} × {bigint, packed, csr}.  These tests pin that
contract with hypothesis over seeds and word-boundary vertex counts,
cover both sides of the ``_VECTOR_MIN_EXPECTED`` auto-dispatch
threshold, and pin the bulk planting / K_n fill rewrites against their
scalar twins.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, powerlaw_host
from repro.graphs import generators as gen
from repro.graphs.generators import (
    _VECTOR_MIN_EXPECTED,
    gnd,
    gnp,
    planted_disjoint_triangles,
    tripartite_mu,
)

SEEDS = st.integers(min_value=0, max_value=2**16)
# Word-boundary counts: the packed kernel's uint64 edges and the csr
# unranking both get exercised at n ∈ {63, 64, 65, 127, 129}.
BOUNDARY_N = st.sampled_from([5, 31, 63, 64, 65, 127, 129, 200])


def assert_identical(scalar: Graph, vectorized: Graph) -> None:
    assert scalar == vectorized
    assert scalar.num_edges == vectorized.num_edges
    assert list(scalar.edges()) == list(vectorized.edges())


class TestGnpIdentity:
    @given(BOUNDARY_N, st.sampled_from([0.01, 0.1, 0.35, 0.8]), SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_scalar_equals_vectorized(self, n, p, seed):
        assert_identical(
            gnp(n, p, seed=seed, vectorized=False),
            gnp(n, p, seed=seed, vectorized=True),
        )

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_identical_across_backends(self, seed):
        reference = gnp(129, 0.2, seed=seed, vectorized=False,
                        backend="bigint")
        for backend in ("bigint", "packed", "csr"):
            assert gnp(129, 0.2, seed=seed, vectorized=True,
                       backend=backend) == reference

    def test_auto_dispatch_crosses_threshold_transparently(self):
        # Below the threshold auto takes the scalar loop; force the
        # vectorized path and demand the same graph.
        n_small = 40  # expected ≈ 78 < _VECTOR_MIN_EXPECTED
        assert 0.1 * n_small * (n_small - 1) / 2 < _VECTOR_MIN_EXPECTED
        assert_identical(
            gnp(n_small, 0.1, seed=7),
            gnp(n_small, 0.1, seed=7, vectorized=True),
        )
        # Above the threshold auto takes the vectorized path; force the
        # scalar loop and demand the same graph.
        n_big = 250  # expected ≈ 3112 > _VECTOR_MIN_EXPECTED
        assert 0.1 * n_big * (n_big - 1) / 2 > _VECTOR_MIN_EXPECTED
        assert_identical(
            gnp(n_big, 0.1, seed=7, vectorized=False),
            gnp(n_big, 0.1, seed=7),
        )

    def test_gnd_threads_the_knob(self):
        assert_identical(
            gnd(150, 6.0, seed=3, vectorized=False),
            gnd(150, 6.0, seed=3, vectorized=True),
        )

    def test_p_one_is_complete_on_every_backend(self):
        for backend in ("bigint", "packed", "csr"):
            graph = gnp(65, 1.0, seed=9, backend=backend)
            assert graph.num_edges == 65 * 64 // 2
            assert graph == Graph.complete(65, backend="bigint")

    def test_degenerate_sizes(self):
        assert gnp(0, 0.5, vectorized=True).num_edges == 0
        assert gnp(1, 0.5, vectorized=True).num_edges == 0
        assert gnp(10, 0.0, vectorized=True).num_edges == 0


class TestTripartiteMuIdentity:
    @given(st.sampled_from([4, 21, 22, 40]),
           st.sampled_from([0.5, 1.5, 4.0]), SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_scalar_equals_vectorized(self, part_size, gamma, seed):
        scalar, parts_s = tripartite_mu(
            part_size, gamma, seed=seed, vectorized=False
        )
        vector, parts_v = tripartite_mu(
            part_size, gamma, seed=seed, vectorized=True
        )
        assert parts_s == parts_v
        assert_identical(scalar, vector)

    def test_chunked_draws_match_unchunked(self, monkeypatch):
        # Shrink the draw chunk so one part-pair spans many chunks; the
        # uniform stream (and hence the graph) must not notice.
        reference, _ = tripartite_mu(30, 2.0, seed=11, vectorized=True)
        monkeypatch.setattr(gen, "_DRAW_CHUNK", 64)
        chunked, _ = tripartite_mu(30, 2.0, seed=11, vectorized=True)
        assert_identical(reference, chunked)


class TestPowerlawHostIdentity:
    @given(BOUNDARY_N, st.sampled_from([2.0, 6.0]),
           st.sampled_from([2.1, 2.5, 2.9]), SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_scalar_equals_vectorized(self, n, d, exponent, seed):
        assert_identical(
            powerlaw_host(n, d, exponent=exponent, seed=seed,
                          vectorized=False),
            powerlaw_host(n, d, exponent=exponent, seed=seed,
                          vectorized=True),
        )

    @given(SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_identical_across_backends(self, seed):
        reference = powerlaw_host(200, 4.0, seed=seed, vectorized=False)
        for backend in ("bigint", "packed", "csr"):
            built = powerlaw_host(200, 4.0, seed=seed, backend=backend)
            assert built.backend == backend
            assert built == reference

    def test_hub_zero_is_heaviest(self):
        graph = powerlaw_host(500, 4.0, exponent=2.2, seed=1)
        degrees = graph.degrees()
        assert degrees[0] == max(degrees)
        assert degrees[0] > 3 * (sum(degrees) / len(degrees))

    def test_validation(self):
        with pytest.raises(ValueError, match="exponent"):
            powerlaw_host(10, 2.0, exponent=1.0)
        with pytest.raises(ValueError, match="non-negative"):
            powerlaw_host(-1, 2.0)
        assert powerlaw_host(0, 2.0).n == 0
        assert powerlaw_host(50, 0.0).num_edges == 0


class TestBulkPlantingIdentity:
    def test_bulk_and_scalar_plants_agree(self, monkeypatch):
        def build():
            return planted_disjoint_triangles(
                400, 120, seed=13, background_degree=2.0
            )

        monkeypatch.setattr(gen, "_BULK_PLANT_MIN", 10**9)
        scalar = build()
        monkeypatch.setattr(gen, "_BULK_PLANT_MIN", 1)
        bulk = build()
        assert scalar.planted_triangles == bulk.planted_triangles
        assert scalar.epsilon_certified == bulk.epsilon_certified
        assert_identical(scalar.graph, bulk.graph)

    def test_pattern_plant_bulk_agrees(self, monkeypatch):
        from repro.patterns import plant as plant_module
        from repro.patterns.catalog import FOUR_CLIQUE

        def build():
            return plant_module.planted_disjoint_subgraphs(
                200, FOUR_CLIQUE, 30, seed=5, background_degree=1.5
            )

        monkeypatch.setattr(plant_module, "_BULK_PLANT_EDGES", 10**9)
        scalar = build()
        monkeypatch.setattr(plant_module, "_BULK_PLANT_EDGES", 1)
        bulk = build()
        assert scalar.planted_copies == bulk.planted_copies
        assert_identical(scalar.graph, bulk.graph)

"""Tests for error amplification, the µ' conditioning, and the V_h/V_l split."""

import math

import pytest

from repro.core.amplification import amplify, rounds_for_target
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.graphs.generators import (
    bipartite_triangle_free,
    far_instance,
    skewed_hub_graph,
)
from repro.graphs.highlow import high_low_split
from repro.graphs.partition import partition_disjoint
from repro.graphs.triangles import greedy_triangle_packing
from repro.lowerbounds.distributions import (
    MuDistribution,
    conditioned_error_bound,
)


class TestRoundsForTarget:
    def test_exact_powers(self):
        assert rounds_for_target(0.5, 0.125) == 3
        assert rounds_for_target(0.1, 0.01) == 2

    def test_already_good_enough(self):
        assert rounds_for_target(0.01, 0.1) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            rounds_for_target(0.0, 0.1)
        with pytest.raises(ValueError):
            rounds_for_target(0.5, 1.0)


class TestAmplify:
    def weak_protocol(self, partition, seed):
        # Deliberately starved: misses often in one round.
        return find_triangle_sim_low(
            partition, SimLowParams(epsilon=0.2, delta=0.2, c=1.5),
            seed=seed,
        )

    def test_amplification_raises_detection(self):
        instance = far_instance(800, 5.0, 0.25, seed=1)
        partition = partition_disjoint(instance.graph, 3, seed=2)
        single_hits = sum(
            self.weak_protocol(partition, seed).found for seed in range(8)
        )
        amplified_hits = sum(
            amplify(self.weak_protocol, partition, rounds=6, seed=seed).found
            for seed in range(8)
        )
        assert amplified_hits >= single_hits
        assert amplified_hits == 8  # 6 rounds of a ~0.6-success protocol

    def test_one_sided_preserved(self):
        control = bipartite_triangle_free(400, 5.0, seed=3)
        partition = partition_disjoint(control, 3, seed=4)
        result = amplify(self.weak_protocol, partition, rounds=5, seed=5)
        assert not result.found

    def test_cost_accumulates(self):
        control = bipartite_triangle_free(400, 5.0, seed=6)
        partition = partition_disjoint(control, 3, seed=7)
        one_round = self.weak_protocol(partition, 8)
        five_rounds = amplify(
            self.weak_protocol, partition, rounds=5, seed=8,
            stop_early=False,
        )
        assert five_rounds.total_bits >= 4 * one_round.total_bits
        assert five_rounds.details["amplified_rounds"] == 5

    def test_stop_early_saves(self):
        instance = far_instance(800, 5.0, 0.25, seed=9)
        partition = partition_disjoint(instance.graph, 3, seed=10)
        def protocol(p, s):
            return find_triangle_sim_low(
                p, SimLowParams(epsilon=0.25, delta=0.1), seed=s
            )
        eager = amplify(protocol, partition, rounds=6, seed=11)
        batch = amplify(
            protocol, partition, rounds=6, seed=11, stop_early=False
        )
        assert eager.found and batch.found
        assert eager.total_bits <= batch.total_bits

    def test_rounds_validated(self):
        instance = far_instance(100, 4.0, 0.3, seed=12)
        partition = partition_disjoint(instance.graph, 2, seed=13)
        with pytest.raises(ValueError):
            amplify(self.weak_protocol, partition, rounds=0)


class TestConditioning:
    def test_observation_4_4_formula(self):
        assert conditioned_error_bound(0.05, 0.5) == pytest.approx(0.1)
        assert conditioned_error_bound(0.8, 0.5) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            conditioned_error_bound(-0.1, 0.5)
        with pytest.raises(ValueError):
            conditioned_error_bound(0.1, 0.0)

    def test_sample_far_certifies(self):
        mu = MuDistribution(part_size=30, gamma=1.2)
        sample = mu.sample_far(seed=1, min_packing=3)
        assert len(greedy_triangle_packing(sample.graph)) >= 3

    def test_sample_far_unreachable_raises(self):
        mu = MuDistribution(part_size=4, gamma=0.2)
        with pytest.raises(RuntimeError):
            mu.sample_far(seed=2, min_packing=50, max_tries=5)


class TestHighLowSplit:
    def test_threshold_formula(self):
        instance = far_instance(400, 6.0, 0.25, seed=1)
        split = high_low_split(instance.graph, 0.25)
        expected = math.sqrt(
            400 * instance.graph.average_degree() / 0.25
        )
        assert split.threshold == pytest.approx(expected)

    def test_partition_of_vertices(self):
        instance = far_instance(300, 5.0, 0.3, seed=2)
        split = high_low_split(instance.graph, 0.3)
        assert split.high_vertices | split.low_vertices == set(range(300))
        assert not (split.high_vertices & split.low_vertices)

    def test_high_high_edges_have_high_endpoints(self):
        graph = skewed_hub_graph(200, num_hubs=4, vees_per_hub=15, seed=3)
        split = high_low_split(graph, 0.5)
        for u, v in split.high_high_edges:
            assert u in split.high_vertices
            assert v in split.high_vertices

    def test_low_graph_drops_exactly_eh(self):
        graph = skewed_hub_graph(200, num_hubs=4, vees_per_hub=15, seed=4)
        split = high_low_split(graph, 0.5)
        assert split.low_graph.num_edges == (
            graph.num_edges - len(split.high_high_edges)
        )

    def test_lemma_3_11_edge_budget(self):
        # |E_h| < εnd/2: the removed mass never threatens the promise.
        for seed in range(3):
            instance = far_instance(400, 6.0, 0.25, seed=seed)
            graph = instance.graph
            split = high_low_split(graph, 0.25)
            budget = 0.25 * graph.n * graph.average_degree() / 2
            assert len(split.high_high_edges) < max(1.0, budget)

    def test_sparse_graph_everything_low(self):
        instance = far_instance(500, 4.0, 0.3, seed=5)
        split = high_low_split(instance.graph, 0.3)
        # With d=4 and n=500, d_h ~ 82: no vertex qualifies.
        assert split.num_high == 0
        assert split.low_graph.num_edges == instance.graph.num_edges

    def test_invalid_epsilon(self):
        instance = far_instance(100, 4.0, 0.3, seed=6)
        with pytest.raises(ValueError):
            high_low_split(instance.graph, 0.0)

"""Unit tests for the Player local-computation API (repro.comm.players)."""

import pytest

from repro.comm.players import Player, make_players
from repro.comm.randomness import SharedRandomness
from repro.graphs.generators import gnd
from repro.graphs.partition import partition_with_duplication


@pytest.fixture
def player() -> Player:
    return Player(0, 10, [(0, 1), (0, 2), (1, 2), (3, 4)])


class TestIntrospection:
    def test_edges_canonicalized(self):
        p = Player(0, 5, [(2, 1)])
        assert (1, 2) in p.edges

    def test_has_edge_symmetric(self, player):
        assert player.has_edge(1, 0)
        assert player.has_edge(0, 1)
        assert not player.has_edge(0, 3)

    def test_self_loop_false(self, player):
        assert not player.has_edge(1, 1)

    def test_local_degree(self, player):
        assert player.local_degree(0) == 2
        assert player.local_degree(9) == 0

    def test_local_neighbors(self, player):
        assert player.local_neighbors(0) == frozenset({1, 2})

    def test_average_local_degree(self, player):
        assert player.average_local_degree() == pytest.approx(8 / 10)

    def test_num_edges(self, player):
        assert player.num_edges == 4


class TestMsb:
    def test_msb_of_zero_degree_is_none(self, player):
        assert player.degree_msb_index(9) is None

    def test_msb_values(self):
        p = Player(0, 20, [(0, i) for i in range(1, 6)])  # degree 5
        assert p.degree_msb_index(0) == 2  # 5 = 0b101

    def test_msb_degree_one(self, player):
        assert player.degree_msb_index(3) == 0


class TestSuspectedBucket:
    def test_uses_local_degrees(self):
        p = Player(0, 20, [(0, i) for i in range(1, 5)])  # d_0(0) = 4
        # bucket 2 = [3, 9): suspected band [3/2, 9] for k=2 -> 4 included
        assert 0 in p.suspected_bucket(2, k=2)
        # bucket 1 = [1, 3): suspected band [0.5, 3] -> 4 excluded
        assert 0 not in p.suspected_bucket(1, k=2)


class TestRankedMinima:
    def test_first_vertex_under_rank_agrees_across_players(self):
        shared_a = SharedRandomness(3)
        shared_b = SharedRandomness(3)
        rank_a = shared_a.permutation_rank(10, tag=1)
        rank_b = shared_b.permutation_rank(10, tag=1)
        p1 = Player(0, 10, [(0, 1), (2, 3)])
        p2 = Player(1, 10, [(0, 1), (2, 3)])
        assert p1.first_vertex_under_rank(
            [0, 2, 3], rank_a
        ) == p2.first_vertex_under_rank([0, 2, 3], rank_b)

    def test_first_vertex_empty_candidates(self, player):
        rank = SharedRandomness(0).permutation_rank(10)
        assert player.first_vertex_under_rank([], rank) is None

    def test_first_incident_edge(self, player):
        rank = SharedRandomness(1).permutation_rank(10)
        edge = player.first_incident_edge_under_rank(0, rank)
        assert edge in {(0, 1), (0, 2)}

    def test_first_incident_edge_isolated(self, player):
        rank = SharedRandomness(1).permutation_rank(10)
        assert player.first_incident_edge_under_rank(9, rank) is None

    def test_first_edge_under_rank(self, player):
        def rank(edge):
            return edge  # lexicographic
        assert player.first_edge_under_rank(rank) == (0, 1)

    def test_first_edge_empty_input(self):
        p = Player(0, 5, [])
        assert p.first_edge_under_rank(lambda e: e) is None


class TestHarvesting:
    def test_edges_at_vertex_in_sample(self, player):
        assert player.edges_at_vertex_in_sample(0, {1}) == {(0, 1)}
        assert player.edges_at_vertex_in_sample(0, {1, 2}) == {
            (0, 1), (0, 2)
        }

    def test_edges_within(self, player):
        assert player.edges_within({0, 1, 2}) == {(0, 1), (0, 2), (1, 2)}
        assert player.edges_within({3, 4}) == {(3, 4)}
        assert player.edges_within({5, 6}) == set()

    def test_edges_touching_both(self, player):
        # R = {0}, R u S = {0, 1}: only (0,1) qualifies.
        assert player.edges_touching_both({0}, {0, 1}) == {(0, 1)}

    def test_edges_touching_both_symmetry(self, player):
        result = player.edges_touching_both({4}, {3, 4})
        assert result == {(3, 4)}

    def test_sample_hits_vertex(self, player):
        assert player.sample_hits_vertex(0, {2})
        assert not player.sample_hits_vertex(0, {7})
        assert not player.sample_hits_vertex(9, {0, 1, 2})

    def test_any_incident_neighbor_in(self, player):
        assert player.any_incident_neighbor_in(0, lambda u: u == 2)
        assert not player.any_incident_neighbor_in(0, lambda u: u == 7)

    def test_any_edge_index_in(self, player):
        def index_of(edge):
            return edge[0] * 10 + edge[1]
        assert player.any_edge_index_in(index_of, lambda i: i == 1)
        assert not player.any_edge_index_in(index_of, lambda i: i == 99)


class TestClosing:
    def test_find_closing_edge(self, player):
        result = player.find_closing_edge([((3, 0), (3, 1))])
        # Vee at 3 over (0,1): player holds (0,1) -> closes.
        assert result is not None
        assert result[2] == (0, 1)

    def test_find_closing_edge_none(self, player):
        assert player.find_closing_edge([((5, 6), (5, 7))]) is None

    def test_non_vee_pairs_skipped(self, player):
        # Pair sharing no vertex is ignored, not crashed on.
        assert player.find_closing_edge([((0, 1), (2, 3))]) is None

    def test_find_closing_edge_for_pairs(self, player):
        result = player.find_closing_edge_for_pairs([(5, 0), (5, 1)])
        assert result is not None
        assert result[2] == (0, 1)

    def test_find_closing_edge_for_pairs_none(self, player):
        assert player.find_closing_edge_for_pairs([(5, 6), (6, 7)]) is None


class TestMakePlayers:
    def test_matches_partition(self):
        graph = gnd(50, 4.0, seed=1)
        partition = partition_with_duplication(graph, 3, seed=2)
        players = make_players(partition)
        assert len(players) == 3
        for player, view in zip(players, partition.views):
            assert player.edges == view
            assert player.n == 50

"""Tests for the executable Newman's theorem (repro.comm.newman)."""

import pytest

from repro.comm.encoding import bits_for_universe
from repro.comm.newman import (
    build_pool,
    estimate_pool_error,
    pool_size,
)
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.graphs.generators import far_instance
from repro.graphs.partition import partition_disjoint


class TestPoolSize:
    def test_formula_monotonicity(self):
        assert pool_size(0.1, 0.05) > pool_size(0.2, 0.05)
        assert pool_size(0.1, 0.01) > pool_size(0.1, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            pool_size(0.0, 0.1)
        with pytest.raises(ValueError):
            pool_size(0.1, 1.0)


class TestBuildPool:
    def test_deterministic(self):
        assert build_pool(4, master_seed=7).seeds == build_pool(
            4, master_seed=7
        ).seeds

    def test_size_matches_formula(self):
        pool = build_pool(4, gamma=0.2, delta_prime=0.1)
        assert pool.size == pool_size(0.2, 0.1)

    def test_announcement_cost_k_log_t(self):
        pool = build_pool(6, gamma=0.2, delta_prime=0.1)
        assert pool.announcement_bits == 6 * bits_for_universe(pool.size)

    def test_choose_deterministic_per_private_seed(self):
        pool = build_pool(3, master_seed=1)
        assert pool.choose(42) == pool.choose(42)
        assert pool.choose(42) in pool.seeds

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            build_pool(0)


class TestErrorPreservation:
    def test_pool_error_small_on_real_protocol(self):
        """Running sim-low with pool seeds only keeps detection high."""
        pool = build_pool(3, gamma=0.25, delta_prime=0.1, master_seed=3)
        params = SimLowParams(epsilon=0.25, delta=0.1)

        inputs = []
        for seed in range(3):
            instance = far_instance(600, 5.0, 0.25, seed=seed)
            inputs.append(
                partition_disjoint(instance.graph, 3, seed=seed + 10)
            )

        def run(partition, seed):
            return find_triangle_sim_low(
                partition, params, seed=seed % (2 ** 31)
            ).found

        worst_error = estimate_pool_error(pool, run, inputs)
        # Public-coin error is ~delta = 0.1; Newman allows +gamma = 0.25.
        assert worst_error <= 0.1 + 0.25 + 0.05

    def test_empty_inputs_rejected(self):
        pool = build_pool(3)
        with pytest.raises(ValueError):
            estimate_pool_error(pool, lambda i, s: True, [])

    def test_perfect_protocol_zero_error(self):
        pool = build_pool(3, master_seed=5)
        assert estimate_pool_error(
            pool, lambda i, s: True, [object(), object()]
        ) == 0.0

    def test_announcement_is_olog_n_per_player(self):
        # With constant gamma/delta' the pool is constant-size: the
        # announcement is O(k), well within the paper's O(k log n) remark.
        for k in (3, 10, 50):
            pool = build_pool(k, gamma=0.1, delta_prime=0.05)
            assert pool.announcement_bits <= k * 16

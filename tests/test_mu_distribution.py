"""Tests for the hard distribution µ (repro.lowerbounds.distributions)."""

import math

import pytest

from repro.graphs.triangles import greedy_triangle_packing
from repro.lowerbounds.distributions import (
    MuDistribution,
    estimate_far_probability,
    split_three_players,
)


class TestMuDistribution:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            MuDistribution(part_size=0)
        with pytest.raises(ValueError):
            MuDistribution(part_size=10, gamma=0.0)

    def test_n_is_three_parts(self):
        assert MuDistribution(part_size=20).n == 60

    def test_edge_probability(self):
        mu = MuDistribution(part_size=12, gamma=0.9)
        assert mu.edge_probability == pytest.approx(0.9 / 6.0)

    def test_expected_degree_theta_sqrt_n(self):
        mu = MuDistribution(part_size=48, gamma=1.0)
        # E[deg] = 2 * part * p = 2 * (n/3) * gamma/sqrt(n) = (2/3)gamma*sqrt(n)
        assert mu.expected_average_degree() == pytest.approx(
            2.0 * 48 / math.sqrt(144)
        )

    def test_sample_deterministic(self):
        mu = MuDistribution(part_size=15, gamma=1.0)
        assert (
            mu.sample(seed=5).graph.edge_set()
            == mu.sample(seed=5).graph.edge_set()
        )

    def test_sample_edge_count_near_expectation(self):
        mu = MuDistribution(part_size=50, gamma=1.0)
        sample = mu.sample(seed=1)
        expected = 3 * 50 * 50 * mu.edge_probability
        assert 0.6 * expected <= sample.graph.num_edges <= 1.4 * expected

    def test_expected_triangles_formula(self):
        mu = MuDistribution(part_size=30, gamma=1.0)
        assert mu.expected_triangles() == pytest.approx(
            30 ** 3 * mu.edge_probability ** 3
        )


class TestThreePlayerSplit:
    def test_views_cover_cross_parts(self):
        mu = MuDistribution(part_size=20, gamma=1.2)
        sample = mu.sample(seed=2)
        parts = sample.parts
        u_set, v1_set, v2_set = (
            set(parts.u_part), set(parts.v1_part), set(parts.v2_part)
        )
        for u, v in sample.alice_edges:
            assert {u, v} & u_set and {u, v} & v1_set
        for u, v in sample.bob_edges:
            assert {u, v} & u_set and {u, v} & v2_set
        for u, v in sample.charlie_edges:
            assert {u, v} & v1_set and {u, v} & v2_set

    def test_split_is_disjoint_partition(self):
        mu = MuDistribution(part_size=20, gamma=1.2)
        sample = mu.sample(seed=3)
        total = sum(len(view) for view in sample.partition.views)
        assert total == sample.graph.num_edges

    def test_non_tripartite_graph_rejected(self):
        from repro.graphs.generators import mu_parts
        from repro.graphs.graph import Graph

        parts = mu_parts(3)
        graph = Graph(9, [(0, 1)])  # inside U: not cross-part
        with pytest.raises(ValueError):
            split_three_players(graph, parts)

    def test_every_triangle_uses_all_three_views(self):
        mu = MuDistribution(part_size=25, gamma=1.5)
        sample = mu.sample(seed=4)
        from repro.graphs.triangles import iter_triangles

        for triangle in iter_triangles(sample.graph):
            a, b, c = triangle
            edges = {(a, b), (a, c), (b, c)}
            assert edges & sample.alice_edges
            assert edges & sample.bob_edges
            assert edges & sample.charlie_edges


class TestLemma45:
    def test_far_probability_at_least_half(self):
        # Lemma 4.5's claim at reproduction scale: with moderate gamma the
        # sample is far (certified by the packing) at least half the time.
        mu = MuDistribution(part_size=40, gamma=1.2)
        probability = estimate_far_probability(mu, trials=12, seed=0)
        assert probability >= 0.5

    def test_packing_scales_with_n_three_halves(self):
        small = MuDistribution(part_size=24, gamma=1.2)
        large = MuDistribution(part_size=96, gamma=1.2)
        small_packing = len(
            greedy_triangle_packing(small.sample(seed=1).graph)
        )
        large_packing = len(
            greedy_triangle_packing(large.sample(seed=1).graph)
        )
        # n x4 -> n^{3/2} x8; allow slack for small-size effects.
        assert large_packing >= 4 * max(1, small_packing)

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            estimate_far_probability(
                MuDistribution(part_size=5), trials=0
            )

"""Unit tests for edge partitioning (repro.graphs.partition)."""

import pytest

from repro.graphs.generators import gnd
from repro.graphs.graph import Graph
from repro.graphs.partition import (
    EdgePartition,
    partition_adversarial_skew,
    partition_all_to_all,
    partition_by_vertex,
    partition_disjoint,
    partition_with_duplication,
)


@pytest.fixture
def graph() -> Graph:
    return gnd(100, 6.0, seed=1)


ALL_PARTITIONERS = [
    lambda g, k: partition_disjoint(g, k, seed=3),
    lambda g, k: partition_with_duplication(g, k, seed=3),
    lambda g, k: partition_all_to_all(g, k),
    lambda g, k: partition_adversarial_skew(g, k, seed=3),
    lambda g, k: partition_by_vertex(g, k, seed=3),
]


class TestCoverageInvariant:
    @pytest.mark.parametrize("partitioner", ALL_PARTITIONERS)
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_union_equals_graph(self, graph, partitioner, k):
        partition = partitioner(graph, k)
        union = set()
        for view in partition.views:
            union.update(view)
        assert union == graph.edge_set()

    def test_invalid_partition_rejected(self, graph):
        views = (frozenset(list(graph.edges())[:-1]),)  # drop one edge
        with pytest.raises(ValueError):
            EdgePartition(graph, views)

    def test_spurious_edge_rejected(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            EdgePartition(graph, (frozenset({(0, 1), (1, 2)}),))


class TestDisjoint:
    def test_views_disjoint(self, graph):
        partition = partition_disjoint(graph, 4, seed=2)
        total = sum(len(view) for view in partition.views)
        assert total == graph.num_edges
        assert not partition.has_duplication

    def test_multiplicity_one(self, graph):
        partition = partition_disjoint(graph, 4, seed=2)
        for edge in graph.edges():
            assert partition.multiplicity(edge) == 1

    def test_deterministic(self, graph):
        a = partition_disjoint(graph, 3, seed=5)
        b = partition_disjoint(graph, 3, seed=5)
        assert a.views == b.views

    def test_zero_players_rejected(self, graph):
        with pytest.raises(ValueError):
            partition_disjoint(graph, 0)


class TestDuplication:
    def test_has_duplication_typically(self, graph):
        partition = partition_with_duplication(
            graph, 4, seed=2, duplication_probability=0.5
        )
        assert partition.has_duplication

    def test_multiplicity_at_least_one(self, graph):
        partition = partition_with_duplication(graph, 4, seed=2)
        for edge in graph.edges():
            assert partition.multiplicity(edge) >= 1

    def test_zero_probability_is_disjoint(self, graph):
        partition = partition_with_duplication(
            graph, 4, seed=2, duplication_probability=0.0
        )
        assert not partition.has_duplication

    def test_invalid_probability_rejected(self, graph):
        with pytest.raises(ValueError):
            partition_with_duplication(
                graph, 3, duplication_probability=1.5
            )


class TestAllToAll:
    def test_every_player_sees_everything(self, graph):
        partition = partition_all_to_all(graph, 3)
        for view in partition.views:
            assert view == frozenset(graph.edges())

    def test_multiplicity_k(self, graph):
        partition = partition_all_to_all(graph, 5)
        edge = next(iter(graph.edges()))
        assert partition.multiplicity(edge) == 5


class TestSkew:
    def test_player_zero_heavy(self, graph):
        partition = partition_adversarial_skew(
            graph, 5, seed=2, heavy_fraction=0.9
        )
        share = len(partition.views[0]) / graph.num_edges
        assert share > 0.75

    def test_single_player_gets_all(self, graph):
        partition = partition_adversarial_skew(graph, 1, seed=2)
        assert partition.views[0] == frozenset(graph.edges())

    def test_invalid_fraction_rejected(self, graph):
        with pytest.raises(ValueError):
            partition_adversarial_skew(graph, 3, heavy_fraction=0.0)


class TestByVertex:
    def test_edge_follows_lower_endpoint(self, graph):
        partition = partition_by_vertex(graph, 4, seed=7)
        # Rebuild the vertex-owner map implied by the views and check
        # consistency: all edges with the same lower endpoint co-locate.
        owner_of: dict[int, int] = {}
        for player, view in enumerate(partition.views):
            for u, _v in view:
                if u in owner_of:
                    assert owner_of[u] == player
                owner_of[u] = player

    def test_k_property(self, graph):
        partition = partition_by_vertex(graph, 4, seed=7)
        assert partition.k == 4

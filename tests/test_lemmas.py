"""Tests: the Section 3.2 lemma chain holds on generated instances."""

import pytest

from repro.graphs.generators import (
    bipartite_triangle_free,
    far_instance,
    planted_disjoint_triangles,
    skewed_hub_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.lemmas import (
    check_all,
    check_corollary_3_6,
    check_lemma_3_4,
    check_lemma_3_7,
    check_lemma_3_9,
    check_lemma_3_11,
    check_lemma_3_12,
)


@pytest.fixture(scope="module")
def far():
    instance = far_instance(300, 5.0, 0.3, seed=1)
    return instance.graph, instance.epsilon_certified


@pytest.fixture(scope="module")
def hubs():
    return skewed_hub_graph(400, num_hubs=3, vees_per_hub=25, seed=2)


class TestChainOnFarInstances:
    def test_all_checks_hold_on_planted(self, far):
        graph, epsilon = far
        for check in check_all(graph, epsilon, seed=3):
            assert check.holds, str(check)

    def test_all_checks_hold_on_hub_instance(self, hubs):
        for check in check_all(hubs, 0.3, seed=4):
            assert check.holds, str(check)

    def test_all_checks_hold_on_dense_far(self):
        instance = far_instance(200, 14.0, 0.25, seed=5)
        for check in check_all(
            instance.graph, instance.epsilon_certified, seed=6
        ):
            assert check.holds, str(check)

    def test_vacuous_on_triangle_free(self):
        control = bipartite_triangle_free(200, 5.0, seed=7)
        for check in check_all(control, 0.2, seed=8):
            assert check.holds, str(check)


class TestIndividualLemmas:
    def test_lemma_3_4_upper_universal(self, hubs):
        # The upper bound holds for every bucket, full or not.
        from repro.graphs.buckets import buckets

        for bucket in buckets(hubs):
            if bucket == 0:
                continue
            check = check_lemma_3_4(hubs, bucket, 0.3)
            assert check.holds, str(check)

    def test_corollary_3_6_full_bucket(self, far):
        graph, epsilon = far
        from repro.graphs.buckets import full_buckets

        for bucket in full_buckets(graph, epsilon):
            check = check_corollary_3_6(graph, bucket, epsilon)
            assert check.holds, str(check)
            assert check.lhs > 0  # non-vacuous: full vertices exist

    def test_lemma_3_7_full_bucket(self, far):
        graph, epsilon = far
        from repro.graphs.buckets import full_buckets

        for bucket in full_buckets(graph, epsilon):
            check = check_lemma_3_7(graph, bucket, epsilon)
            assert check.holds, str(check)

    def test_lemma_3_9_at_hub(self, hubs):
        hub = max(range(hubs.n), key=hubs.degree)
        check = check_lemma_3_9(hubs, hub, trials=40, seed=9)
        assert check.holds, str(check)
        assert check.lhs > 0  # non-vacuous: vees found empirically

    def test_lemma_3_9_vacuous_without_vees(self):
        path = Graph(10, [(i, i + 1) for i in range(9)])
        check = check_lemma_3_9(path, 5)
        assert check.holds
        assert "vacuous" in check.note

    def test_lemma_3_11_low_degree_vees(self, far):
        graph, epsilon = far
        check = check_lemma_3_11(graph, epsilon)
        assert check.holds, str(check)

    def test_lemma_3_12_brackets_bmin(self, far):
        graph, epsilon = far
        check = check_lemma_3_12(graph, epsilon)
        assert check.holds, str(check)
        assert "B_min" in check.note

    def test_lemma_3_12_vacuous_without_full_bucket(self):
        control = bipartite_triangle_free(100, 4.0, seed=10)
        check = check_lemma_3_12(control, 0.2)
        assert check.holds
        assert "vacuous" in check.note


class TestCheckReporting:
    def test_str_format(self, far):
        graph, epsilon = far
        check = check_lemma_3_11(graph, epsilon)
        assert "Lemma 3.11" in str(check)
        assert "ok" in str(check) or "VIOLATED" in str(check)

    def test_heavily_planted_instance_stays_consistent(self):
        # Maximal farness: nothing but triangles.
        instance = planted_disjoint_triangles(90, 30, seed=11)
        for check in check_all(instance.graph, 1.0 / 3.0, seed=12):
            assert check.holds, str(check)

"""Tests for the exact baseline and the test_triangle_freeness wrapper."""

import pytest

from repro.comm.encoding import edge_bits
from repro.core import check_triangle_freeness
from repro.core.exact_baseline import (
    exact_triangle_detection,
    exact_triangle_detection_blackboard,
)
from repro.graphs.generators import (
    bipartite_triangle_free,
    far_instance,
    gnd,
)
from repro.graphs.partition import (
    partition_all_to_all,
    partition_disjoint,
)


class TestExactBaseline:
    def test_always_correct_on_far_instance(self):
        instance = far_instance(200, 5.0, 0.3, seed=1)
        partition = partition_disjoint(instance.graph, 3, seed=2)
        result = exact_triangle_detection(partition)
        assert result.found

    def test_always_correct_on_free_graph(self):
        control = bipartite_triangle_free(200, 5.0, seed=3)
        partition = partition_disjoint(control, 3, seed=4)
        assert not exact_triangle_detection(partition).found

    def test_cost_is_total_input_size(self):
        graph = gnd(100, 6.0, seed=5)
        partition = partition_disjoint(graph, 3, seed=6)
        result = exact_triangle_detection(partition)
        expected = graph.num_edges * edge_bits(100)
        assert result.total_bits == expected

    def test_duplication_multiplies_cost(self):
        graph = gnd(100, 6.0, seed=7)
        k = 4
        partition = partition_all_to_all(graph, k)
        result = exact_triangle_detection(partition)
        assert result.total_bits == k * graph.num_edges * edge_bits(100)

    def test_blackboard_pays_once(self):
        graph = gnd(100, 6.0, seed=8)
        partition = partition_all_to_all(graph, 4)
        result = exact_triangle_detection_blackboard(partition)
        assert result.total_bits == graph.num_edges * edge_bits(100)

    def test_blackboard_same_verdict(self):
        instance = far_instance(150, 5.0, 0.3, seed=9)
        partition = partition_disjoint(instance.graph, 3, seed=10)
        assert exact_triangle_detection_blackboard(partition).found


class TestWrapper:
    @pytest.fixture
    def far_partition(self):
        instance = far_instance(600, 5.0, 0.3, seed=1)
        return partition_disjoint(instance.graph, 3, seed=2)

    @pytest.fixture
    def free_partition(self):
        control = bipartite_triangle_free(600, 5.0, seed=3)
        return partition_disjoint(control, 3, seed=4)

    def test_auto_picks_regime(self, far_partition):
        verdict = check_triangle_freeness(far_partition, seed=1)
        assert verdict is False  # far instance: triangle found

    def test_free_graph_accepted(self, free_partition):
        for protocol in ("sim-low", "sim-high", "sim-oblivious", "exact"):
            assert check_triangle_freeness(
                free_partition, protocol=protocol, seed=2
            )

    def test_exact_never_errs(self, far_partition):
        assert not check_triangle_freeness(
            far_partition, protocol="exact"
        )

    def test_kwargs_forwarded(self, far_partition):
        verdict = check_triangle_freeness(
            far_partition, protocol="sim-low", seed=5, epsilon=0.3, delta=0.1
        )
        assert verdict is False

    def test_unknown_protocol_rejected(self, far_partition):
        with pytest.raises(ValueError):
            check_triangle_freeness(far_partition, protocol="teleport")

    def test_auto_dense_uses_high(self):
        import math

        n = 400
        instance = far_instance(n, math.sqrt(n) + 5, 0.3, seed=6)
        partition = partition_disjoint(instance.graph, 3, seed=7)
        assert check_triangle_freeness(partition, seed=8) is False

"""Tests for the Section 3.3 unrestricted protocol (Algorithms 1-6)."""

import math

import pytest

from repro.core.degree_approx import DegreeApproxParams
from repro.core.unrestricted import (
    UnrestrictedParams,
    find_triangle_unrestricted,
)
from repro.graphs.generators import (
    bipartite_triangle_free,
    far_instance,
    planted_disjoint_triangles,
    skewed_hub_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.partition import (
    partition_disjoint,
    partition_with_duplication,
)

FAST = dict(
    samples_per_bucket=24,
    max_candidates=10,
    degree_params=DegreeApproxParams(
        alpha=math.sqrt(3.0), tau=0.2, experiments_override=10
    ),
)


def fast_params(**overrides) -> UnrestrictedParams:
    merged = dict(epsilon=0.3, delta=0.2, **FAST)
    merged.update(overrides)
    return UnrestrictedParams(**merged)


class TestParams:
    def test_paper_formulas_at_scale_one(self):
        params = UnrestrictedParams(epsilon=0.1, delta=0.1)
        n, k = 1024, 4
        expected_q = math.log(60.0) * 108 * 10 ** 2 * k / 0.01
        assert params.bucket_sample_budget(n, k) == pytest.approx(
            expected_q, rel=0.01
        )

    def test_scale_shrinks_budgets(self):
        big = UnrestrictedParams(scale=1.0)
        small = UnrestrictedParams(scale=0.001)
        assert small.bucket_sample_budget(1024, 4) < (
            big.bucket_sample_budget(1024, 4)
        )

    def test_overrides_win(self):
        params = UnrestrictedParams(samples_per_bucket=7, max_candidates=3)
        assert params.bucket_sample_budget(10_000, 10) == 7
        assert params.candidate_budget(10_000) == 3

    def test_edge_probability_decreasing_in_degree(self):
        params = UnrestrictedParams()
        assert params.edge_probability(1000, 400) <= params.edge_probability(
            1000, 100
        )

    def test_edge_probability_capped_at_one(self):
        assert UnrestrictedParams().edge_probability(1000, 1) == 1.0

    def test_edge_cap_positive(self):
        params = UnrestrictedParams()
        assert params.edge_cap(100, 0.5) >= 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            UnrestrictedParams(epsilon=0.0)
        with pytest.raises(ValueError):
            UnrestrictedParams(delta=1.0)
        with pytest.raises(ValueError):
            UnrestrictedParams(degree_mode="bogus")


class TestDetection:
    def test_finds_planted_triangles(self):
        instance = planted_disjoint_triangles(
            120, 20, seed=1, background_degree=2.0
        )
        partition = partition_disjoint(instance.graph, 3, seed=2)
        found = 0
        for seed in range(5):
            result = find_triangle_unrestricted(
                partition,
                fast_params(
                    known_average_degree=instance.graph.average_degree()
                ),
                seed=seed,
            )
            if result.found:
                found += 1
                from repro.graphs.triangles import iter_triangles

                assert result.triangle in set(iter_triangles(instance.graph))
        assert found >= 4

    def test_witness_is_real_triangle(self):
        instance = far_instance(200, 5.0, 0.3, seed=3)
        partition = partition_disjoint(instance.graph, 4, seed=4)
        result = find_triangle_unrestricted(
            partition, fast_params(known_average_degree=5.0), seed=5
        )
        if result.found:
            a, b, c = result.triangle
            assert instance.graph.has_edge(a, b)
            assert instance.graph.has_edge(a, c)
            assert instance.graph.has_edge(b, c)

    def test_one_sided_on_triangle_free(self):
        graph = bipartite_triangle_free(200, 5.0, seed=6)
        partition = partition_disjoint(graph, 3, seed=7)
        for seed in range(3):
            result = find_triangle_unrestricted(
                partition, fast_params(known_average_degree=5.0), seed=seed
            )
            assert not result.found

    def test_skewed_hub_instance(self):
        # The §3.3 motivating case: all vees sourced at high-degree hubs.
        graph = skewed_hub_graph(300, num_hubs=3, vees_per_hub=20, seed=8)
        partition = partition_disjoint(graph, 3, seed=9)
        found = 0
        for seed in range(5):
            result = find_triangle_unrestricted(
                partition,
                fast_params(
                    known_average_degree=graph.average_degree(),
                    samples_per_bucket=40,
                ),
                seed=seed,
            )
            found += result.found
        assert found >= 4

    def test_duplicated_inputs(self):
        instance = far_instance(150, 5.0, 0.3, seed=10)
        partition = partition_with_duplication(instance.graph, 3, seed=11)
        found = 0
        for seed in range(5):
            result = find_triangle_unrestricted(
                partition, fast_params(known_average_degree=5.0), seed=seed
            )
            found += result.found
        assert found >= 3

    def test_empty_graph(self):
        graph = Graph(20)
        from repro.graphs.partition import EdgePartition

        partition = EdgePartition(graph, (frozenset(), frozenset()))
        result = find_triangle_unrestricted(partition, fast_params(), seed=1)
        assert not result.found


class TestObliviousDegree:
    def test_runs_without_degree(self):
        instance = far_instance(150, 5.0, 0.3, seed=12)
        partition = partition_disjoint(instance.graph, 3, seed=13)
        found = 0
        for seed in range(5):
            result = find_triangle_unrestricted(
                partition, fast_params(), seed=seed
            )
            assert result.details["oblivious"] is True
            found += result.found
        assert found >= 3


class TestCostShape:
    def test_early_exit_cheaper_than_control(self):
        # On a planted instance the protocol stops at B_min; on a
        # triangle-free control it runs the whole loop.
        instance = far_instance(400, 6.0, 0.3, seed=14)
        control = bipartite_triangle_free(400, 6.0, seed=15)
        params = fast_params(known_average_degree=6.0)
        found_bits = []
        control_bits = []
        for seed in range(3):
            partition = partition_disjoint(instance.graph, 3, seed=seed)
            result = find_triangle_unrestricted(partition, params, seed=seed)
            if result.found:
                found_bits.append(result.total_bits)
            control_partition = partition_disjoint(control, 3, seed=seed)
            control_bits.append(
                find_triangle_unrestricted(
                    control_partition, params, seed=seed
                ).total_bits
            )
        assert found_bits, "planted triangles never found"
        assert min(found_bits) < max(control_bits)

    def test_blackboard_cheaper(self):
        graph = bipartite_triangle_free(300, 6.0, seed=16)
        partition = partition_disjoint(graph, 5, seed=17)
        coordinator = find_triangle_unrestricted(
            partition, fast_params(known_average_degree=6.0), seed=18
        )
        blackboard = find_triangle_unrestricted(
            partition,
            fast_params(known_average_degree=6.0, blackboard=True),
            seed=18,
        )
        assert blackboard.total_bits <= coordinator.total_bits

    def test_details_populated(self):
        instance = far_instance(120, 5.0, 0.3, seed=19)
        partition = partition_disjoint(instance.graph, 3, seed=20)
        result = find_triangle_unrestricted(
            partition, fast_params(known_average_degree=5.0), seed=21
        )
        assert "bucket_range" in result.details
        assert result.details["buckets_tried"] >= 1
        assert result.cost.rounds > 0


class TestNodupExactMode:
    def test_degree_mode_nodup(self):
        instance = far_instance(150, 5.0, 0.3, seed=22)
        partition = partition_disjoint(instance.graph, 3, seed=23)
        found = 0
        for seed in range(4):
            result = find_triangle_unrestricted(
                partition,
                fast_params(
                    known_average_degree=5.0, degree_mode="nodup_exact"
                ),
                seed=seed,
            )
            found += result.found
        assert found >= 3

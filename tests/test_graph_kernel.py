"""Differential tests: bitset ``Graph`` vs the set-based reference.

The bitset kernel (one adjacency-mask int per vertex) must be
observationally identical to :class:`repro.graphs.reference.SetGraph`,
the executable specification it replaced.  Hypothesis drives random edge
operation sequences through both backends and compares every query; the
triangle layer's rewritten hot paths are checked against the
order-normalized reference routines on the same graphs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph, iter_bits, mask_of
from repro.graphs.reference import (
    SetGraph,
    count_triangles_reference,
    find_triangle_reference,
    greedy_triangle_packing_reference,
    iter_triangles_reference,
    make_triangle_free_by_removal_reference,
    triangle_edges_reference,
)
from repro.graphs.triangles import (
    count_triangles,
    find_triangle,
    greedy_triangle_packing,
    iter_triangle_vees,
    iter_triangles,
    make_triangle_free_by_removal,
    triangle_edges,
)

# An op sequence: each element is (add?, u, v) over a small vertex range.
OPS = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=23),
        st.integers(min_value=0, max_value=23),
    ),
    max_size=120,
)


def build_both(n: int, ops) -> tuple[Graph, SetGraph]:
    bitset, reference = Graph(n), SetGraph(n)
    for add, u, v in ops:
        if u == v:
            continue
        if add:
            assert bitset.add_edge(u, v) == reference.add_edge(u, v)
        else:
            assert bitset.remove_edge(u, v) == reference.remove_edge(u, v)
    return bitset, reference


class TestEdgeOpRoundTrip:
    @given(OPS)
    @settings(max_examples=150, deadline=None)
    def test_queries_agree_after_random_ops(self, ops):
        bitset, reference = build_both(24, ops)
        assert bitset.num_edges == reference.num_edges
        assert list(bitset.edges()) == list(reference.edges())
        assert bitset.degrees() == reference.degrees()
        assert bitset.isolated_vertices() == reference.isolated_vertices()
        for v in range(24):
            assert bitset.neighbors(v) == reference.neighbors(v)
            assert bitset.neighbor_mask(v) == reference.neighbor_mask(v)
        for u in range(24):
            for v in range(24):
                assert bitset.has_edge(u, v) == reference.has_edge(u, v)
                if u < v:
                    assert (
                        bitset.common_neighbors(u, v)
                        == reference.common_neighbors(u, v)
                    )

    @given(OPS, st.sets(st.integers(min_value=0, max_value=23)))
    @settings(max_examples=60, deadline=None)
    def test_derived_graphs_agree(self, ops, vertices):
        bitset, reference = build_both(24, ops)
        assert bitset.induced_subgraph_edges(vertices) == {
            e for e in reference.edges()
            if e[0] in vertices and e[1] in vertices
        }
        assert bitset.edges_touching(vertices) == {
            e for e in reference.edges()
            if e[0] in vertices or e[1] in vertices
        }
        sub = bitset.subgraph(vertices)
        assert sub.edge_set() == bitset.induced_subgraph_edges(vertices)
        assert sub.n == bitset.n

    @given(OPS)
    @settings(max_examples=60, deadline=None)
    def test_copy_is_independent_and_equal(self, ops):
        bitset, _ = build_both(24, ops)
        clone = bitset.copy()
        assert clone == bitset
        changed = clone.add_edge(0, 1) or clone.remove_edge(0, 1)
        assert changed and clone != bitset


class TestTriangleLayerRoundTrip:
    @given(OPS)
    @settings(max_examples=100, deadline=None)
    def test_triangle_enumeration_identical(self, ops):
        bitset, reference = build_both(24, ops)
        assert list(iter_triangles(bitset)) == list(
            iter_triangles_reference(reference)
        )
        assert find_triangle(bitset) == find_triangle_reference(reference)
        assert count_triangles(bitset) == count_triangles_reference(reference)
        assert triangle_edges(bitset) == triangle_edges_reference(reference)

    @given(OPS)
    @settings(max_examples=100, deadline=None)
    def test_greedy_packing_identical(self, ops):
        bitset, reference = build_both(24, ops)
        assert greedy_triangle_packing(bitset) == (
            greedy_triangle_packing_reference(reference)
        )

    @given(OPS)
    @settings(max_examples=40, deadline=None)
    def test_incremental_removal_identical(self, ops):
        bitset, reference = build_both(24, ops)
        fast, fast_removed = make_triangle_free_by_removal(bitset)
        slow, slow_removed = make_triangle_free_by_removal_reference(
            reference
        )
        assert fast_removed == slow_removed
        assert fast.edge_set() == slow.edge_set()

    @given(OPS, st.integers(min_value=0, max_value=23))
    @settings(max_examples=60, deadline=None)
    def test_vee_enumeration_matches_definition(self, ops, source):
        bitset, reference = build_both(24, ops)
        expected = []
        neighbours = sorted(reference.neighbors(source))
        for i, u in enumerate(neighbours):
            for w in neighbours[i + 1:]:
                if reference.has_edge(u, w):
                    expected.append(
                        (tuple(sorted((source, u))),
                         tuple(sorted((source, w))))
                    )
        assert list(iter_triangle_vees(bitset, source)) == expected


class TestMaskHelpers:
    @given(st.sets(st.integers(min_value=0, max_value=200)))
    def test_mask_roundtrip(self, vertices):
        assert set(iter_bits(mask_of(vertices))) == vertices

    def test_add_neighbors_counts_new_edges(self):
        graph = Graph(8, [(0, 1)])
        assert graph.add_neighbors(0, mask_of({1, 2, 3})) == 2
        assert graph.num_edges == 3
        assert graph.has_edge(0, 3) and graph.has_edge(2, 0)

    def test_add_neighbors_rejects_self_loop_and_overflow(self):
        graph = Graph(4)
        with pytest.raises(ValueError):
            graph.add_neighbors(1, 1 << 1)
        with pytest.raises(ValueError):
            graph.add_neighbors(1, 1 << 4)

    def test_add_edges_bulk(self):
        graph = Graph(5)
        assert graph.add_edges([(0, 1), (1, 0), (2, 3)]) == 2
        assert graph.num_edges == 2

"""Unit tests for degree bucketing & Section 3.2 analysis (repro.graphs.buckets)."""

import math

import pytest

from repro.graphs.buckets import (
    bucket_bounds,
    bucket_index,
    bucket_vee_count,
    buckets,
    degree_thresholds,
    degrees_from_view,
    disjoint_vee_count,
    full_buckets,
    full_vertices,
    full_vertices_in_bucket,
    is_full_bucket,
    is_full_vertex,
    log2n,
    min_full_bucket,
    neighborhood,
    num_buckets,
    player_suspected_bucket,
    r_neighborhood_indices,
)
from repro.graphs.generators import planted_disjoint_triangles, skewed_hub_graph
from repro.graphs.graph import Graph


class TestBucketIndex:
    def test_isolated_in_bucket_zero(self):
        assert bucket_index(0) == 0

    def test_degree_one(self):
        assert bucket_index(1) == 1

    def test_boundaries(self):
        # B_i = [3^(i-1), 3^i)
        assert bucket_index(2) == 1
        assert bucket_index(3) == 2
        assert bucket_index(8) == 2
        assert bucket_index(9) == 3
        assert bucket_index(26) == 3
        assert bucket_index(27) == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bucket_index(-1)

    def test_consistent_with_bounds(self):
        # include exact powers of 3 where float log is treacherous
        for degree in range(1, 800):
            index = bucket_index(degree)
            low, high = bucket_bounds(index)
            assert low <= degree < high


class TestBucketBounds:
    def test_bucket_zero(self):
        assert bucket_bounds(0) == (0, 0)

    def test_bucket_one(self):
        assert bucket_bounds(1) == (1, 3)

    def test_bucket_three(self):
        assert bucket_bounds(3) == (9, 27)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bucket_bounds(-1)


class TestBucketsPartition:
    def test_every_vertex_assigned(self):
        graph = Graph(6, [(0, 1), (1, 2), (1, 3), (1, 4)])
        partition = buckets(graph)
        total = sum(len(members) for members in partition.values())
        assert total == 6

    def test_correct_buckets(self):
        graph = Graph(6, [(0, 1), (1, 2), (1, 3), (1, 4)])
        partition = buckets(graph)
        assert 5 in partition[0]  # isolated
        assert 0 in partition[1]  # degree 1
        assert 1 in partition[2]  # degree 4 -> [3,9)

    def test_num_buckets_bounds(self):
        assert num_buckets(1) == 1
        # For n=100, max degree 99 -> bucket index 5 (81..243) -> 6 buckets.
        assert num_buckets(100) == bucket_index(99) + 1


class TestVeeCounts:
    def test_triangle_source_has_one_vee(self):
        graph = Graph(3, [(0, 1), (0, 2), (1, 2)])
        assert disjoint_vee_count(graph, 0) == 1

    def test_no_vee_without_closing_edge(self):
        graph = Graph(3, [(0, 1), (0, 2)])
        assert disjoint_vee_count(graph, 0) == 0

    def test_hub_with_disjoint_vees(self):
        graph = skewed_hub_graph(50, num_hubs=1, vees_per_hub=5, seed=1)
        hub = max(range(50), key=graph.degree)
        assert disjoint_vee_count(graph, hub) == 5

    def test_greedy_lower_bounds_exact(self):
        graph = skewed_hub_graph(80, num_hubs=1, vees_per_hub=8, seed=2)
        hub = max(range(80), key=graph.degree)
        greedy = disjoint_vee_count(graph, hub, exact=False)
        exact = disjoint_vee_count(graph, hub, exact=True)
        assert greedy <= exact
        assert greedy >= exact / 2  # maximal matching is a 2-approx

    def test_degree_one_vertex(self):
        graph = Graph(3, [(0, 1)])
        assert disjoint_vee_count(graph, 0) == 0


class TestFullVertices:
    def test_triangle_vertices_full(self):
        graph = Graph(3, [(0, 1), (0, 2), (1, 2)])
        for v in range(3):
            assert is_full_vertex(graph, v, epsilon=0.5)

    def test_isolated_not_full(self):
        graph = Graph(4, [(0, 1), (0, 2), (1, 2)])
        assert not is_full_vertex(graph, 3, epsilon=0.5)

    def test_high_degree_without_vees_not_full(self):
        # Star graph: centre has high degree, no triangles at all.
        edges = [(0, i) for i in range(1, 30)]
        graph = Graph(30, edges)
        assert not is_full_vertex(graph, 0, epsilon=0.5)

    def test_full_vertices_list(self):
        graph = Graph(4, [(0, 1), (0, 2), (1, 2)])
        assert set(full_vertices(graph, epsilon=0.5)) == {0, 1, 2}

    def test_full_vertices_in_bucket(self):
        graph = Graph(4, [(0, 1), (0, 2), (1, 2)])
        # All triangle vertices have degree 2 -> bucket 1 ([1,3)).
        assert set(full_vertices_in_bucket(graph, 1, 0.5)) == {0, 1, 2}


class TestFullBuckets:
    def test_planted_instance_has_full_bucket(self):
        instance = planted_disjoint_triangles(60, 15, seed=3)
        epsilon = instance.epsilon_certified
        assert full_buckets(instance.graph, epsilon), (
            "Observation 3.3: an epsilon-far instance must have a full "
            "bucket"
        )

    def test_min_full_bucket_is_lowest(self):
        instance = planted_disjoint_triangles(60, 15, seed=3)
        epsilon = instance.epsilon_certified
        minimum = min_full_bucket(instance.graph, epsilon)
        assert minimum == min(full_buckets(instance.graph, epsilon))

    def test_triangle_free_has_no_full_bucket(self):
        graph = Graph(10, [(i, i + 1) for i in range(9)])
        assert min_full_bucket(graph, 0.1) is None

    def test_bucket_vee_count_sums_sources(self):
        graph = skewed_hub_graph(100, num_hubs=2, vees_per_hub=6, seed=4)
        hub_bucket = bucket_index(12)
        assert bucket_vee_count(graph, hub_bucket) == 12

    def test_is_full_bucket_threshold(self):
        instance = planted_disjoint_triangles(30, 10, seed=5)
        graph = instance.graph
        # Triangle vertices are in bucket 1; with epsilon ~ 1/3 the vee
        # count (10) must exceed eps*n*d/(2 log n).
        threshold = (
            instance.epsilon_certified * 30 * graph.average_degree()
            / (2 * log2n(30))
        )
        assert (bucket_vee_count(graph, 1) >= threshold) == is_full_bucket(
            graph, 1, instance.epsilon_certified
        )


class TestNeighborhoods:
    def test_neighborhood_clips_at_zero(self):
        assert neighborhood(0) == (0, 1)
        assert neighborhood(3) == (2, 3, 4)

    def test_r_neighborhood_r1(self):
        indices = r_neighborhood_indices(2, 1, n=100)
        assert indices[0] == 2

    def test_r_neighborhood_reaches_down_log3r(self):
        indices = r_neighborhood_indices(5, 9, n=10_000)
        assert indices[0] == 3  # 5 - log3(9) = 3

    def test_r_neighborhood_extends_to_top(self):
        indices = r_neighborhood_indices(1, 3, n=100)
        assert indices[-1] == num_buckets(100) - 1

    def test_invalid_r_rejected(self):
        with pytest.raises(ValueError):
            r_neighborhood_indices(1, 0, n=10)


class TestPlayerSuspectedBucket:
    def test_pigeonhole_membership(self):
        # A vertex with global degree in B_i must appear in some player's
        # suspected set when its local degree is >= 3^(i-1) / k.
        view_degrees = {7: 4}
        assert 7 in player_suspected_bucket(view_degrees, 2, k=3)

    def test_excludes_too_high(self):
        # Upper bound is 3^i: no player can hold more than deg(v) edges.
        view_degrees = {7: 100}
        assert 7 not in player_suspected_bucket(view_degrees, 2, k=3)

    def test_excludes_too_low(self):
        view_degrees = {7: 0}
        assert 7 not in player_suspected_bucket(view_degrees, 2, k=3)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            player_suspected_bucket({}, 1, k=0)

    def test_superset_of_true_bucket(self):
        # Simulate: true degree 10 (bucket 3), k=2 players each with >= 5.
        for local in (5, 7, 10):
            assert 0 in player_suspected_bucket({0: local}, 3, k=2)


class TestDegreeThresholds:
    def test_values(self):
        thresholds = degree_thresholds(1000, 10.0, 0.1)
        assert thresholds.d_low == pytest.approx(
            0.1 * 10 / (2 * math.log2(1000))
        )
        assert thresholds.d_high == pytest.approx(math.sqrt(1000 * 10 / 0.1))

    def test_low_below_high(self):
        thresholds = degree_thresholds(1000, 10.0, 0.1)
        assert thresholds.d_low < thresholds.d_high

    def test_bucket_range_covers_thresholds(self):
        thresholds = degree_thresholds(1000, 10.0, 0.1)
        bucket_range = thresholds.bucket_range(1000)
        low, _ = bucket_bounds(bucket_range.start)
        assert low <= max(1, thresholds.d_low) * 3

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            degree_thresholds(100, 0.0, 0.1)
        with pytest.raises(ValueError):
            degree_thresholds(100, 5.0, 0.0)


class TestDegreesFromView:
    def test_counts(self):
        degrees = degrees_from_view([(0, 1), (0, 2), (1, 2)])
        assert degrees == {0: 2, 1: 2, 2: 2}

    def test_empty(self):
        assert degrees_from_view([]) == {}

"""Tests for the query-model substrate (repro.testing)."""

import pytest

from repro.graphs.generators import far_instance, gnd
from repro.graphs.graph import Graph
from repro.testing.oracle import QueryBudgetExceeded, QueryOracle
from repro.testing.testers import (
    dense_triple_tester,
    induced_sample_tester,
    sparse_vee_tester,
)


@pytest.fixture
def graph() -> Graph:
    return gnd(100, 6.0, seed=1)


class TestOracle:
    def test_edge_query(self, graph):
        oracle = QueryOracle(graph)
        edge = next(iter(graph.edges()))
        assert oracle.edge_query(*edge)
        assert oracle.counter.edge_queries == 1

    def test_degree_query(self, graph):
        oracle = QueryOracle(graph)
        v = max(range(100), key=graph.degree)
        assert oracle.degree_query(v) == graph.degree(v)
        assert oracle.counter.degree_queries == 1

    def test_neighbor_query_sorted(self, graph):
        oracle = QueryOracle(graph)
        v = max(range(100), key=graph.degree)
        neighbours = sorted(graph.neighbors(v))
        assert oracle.neighbor_query(v, 0) == neighbours[0]
        assert oracle.neighbor_query(v, len(neighbours)) is None

    def test_total_counter(self, graph):
        oracle = QueryOracle(graph)
        oracle.edge_query(0, 1)
        oracle.degree_query(0)
        oracle.neighbor_query(0, 0)
        assert oracle.counter.total == 3

    def test_budget_enforced(self, graph):
        oracle = QueryOracle(graph, budget=2)
        oracle.edge_query(0, 1)
        oracle.edge_query(0, 2)
        with pytest.raises(QueryBudgetExceeded):
            oracle.edge_query(0, 3)

    def test_log_recorded(self, graph):
        oracle = QueryOracle(graph, record_log=True)
        oracle.edge_query(0, 1)
        assert oracle.counter.log == [("edge", 0, 1)]


class TestDenseTester:
    def test_detects_dense_far_graph(self):
        # Dense instance: many triangles, triples have a real chance.
        graph = gnd(60, 30.0, seed=2)
        oracle = QueryOracle(graph)
        result = dense_triple_tester(oracle, num_triples=3000, seed=3)
        assert result.found

    def test_one_sided(self):
        graph = Graph(30, [(i, i + 1) for i in range(29)])
        oracle = QueryOracle(graph)
        result = dense_triple_tester(oracle, num_triples=500, seed=4)
        assert not result.found

    def test_queries_counted(self):
        graph = gnd(50, 5.0, seed=5)
        oracle = QueryOracle(graph)
        result = dense_triple_tester(oracle, num_triples=100, seed=6)
        assert result.queries == oracle.counter.total
        assert result.queries <= 300

    def test_tiny_graph(self):
        oracle = QueryOracle(Graph(2, [(0, 1)]))
        assert not dense_triple_tester(oracle, 10).found


class TestInducedSampleTester:
    def test_quadratic_query_cost(self):
        graph = gnd(200, 10.0, seed=7)
        oracle = QueryOracle(graph)
        sample_size = 30
        induced_sample_tester(oracle, sample_size, seed=8)
        assert oracle.counter.edge_queries == (
            sample_size * (sample_size - 1) // 2
        )

    def test_detects_with_large_sample(self):
        instance = far_instance(100, 10.0, 0.3, seed=9)
        oracle = QueryOracle(instance.graph)
        result = induced_sample_tester(oracle, 70, seed=10)
        assert result.found

    def test_triangle_is_real(self):
        instance = far_instance(100, 10.0, 0.3, seed=11)
        oracle = QueryOracle(instance.graph)
        result = induced_sample_tester(oracle, 70, seed=12)
        if result.found:
            a, b, c = result.triangle
            assert instance.graph.has_edge(a, b)
            assert instance.graph.has_edge(b, c)
            assert instance.graph.has_edge(a, c)

    def test_communication_advantage_documented(self):
        """Alg 7 sends only existing edges; the query tester pays |S|^2.

        This is the paper's core observation about the dense tester: same
        sample, different cost model.
        """
        import math

        from repro.core.simultaneous_high import (
            SimHighParams,
            find_triangle_sim_high,
        )
        from repro.graphs.partition import partition_disjoint

        n = 300
        instance = far_instance(n, math.sqrt(n), 0.3, seed=13)
        oracle = QueryOracle(instance.graph)
        params = SimHighParams(epsilon=0.3, c=2.0)
        sample_size = params.sample_size(
            n, instance.graph.average_degree()
        )
        query_result = induced_sample_tester(oracle, sample_size, seed=14)
        partition = partition_disjoint(instance.graph, 3, seed=15)
        comm_result = find_triangle_sim_high(partition, params, seed=16)
        # Queries are Theta(|S|^2); sent edges are only the existing ones.
        assert query_result.queries == sample_size * (sample_size - 1) // 2
        edges_sent_equivalent = comm_result.total_bits / (
            2 * math.ceil(math.log2(n))
        )
        assert edges_sent_equivalent < query_result.queries


class TestSparseVeeTester:
    def test_detects_on_triangle_rich_sparse_graph(self):
        instance = far_instance(300, 4.0, 0.3, seed=17)
        oracle = QueryOracle(instance.graph)
        result = sparse_vee_tester(oracle, num_probes=400, seed=18)
        assert result.found

    def test_one_sided(self):
        graph = Graph(50, [(i, i + 1) for i in range(49)])
        oracle = QueryOracle(graph)
        assert not sparse_vee_tester(oracle, 200, seed=19).found

    def test_queries_bounded(self):
        graph = gnd(100, 4.0, seed=20)
        oracle = QueryOracle(graph)
        result = sparse_vee_tester(oracle, num_probes=50, seed=21)
        assert result.queries <= 50 * 4

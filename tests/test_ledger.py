"""Unit tests for communication accounting (repro.comm.ledger)."""

import pytest

from repro.comm.ledger import COORDINATOR, CommunicationLedger, MessageRecord


class TestMessageRecord:
    def test_fields(self):
        record = MessageRecord(sender=1, receiver=COORDINATOR, bits=8)
        assert record.sender == 1
        assert record.bits == 8

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            MessageRecord(sender=0, receiver=COORDINATOR, bits=-1)

    def test_zero_bits_allowed(self):
        assert MessageRecord(0, COORDINATOR, 0).bits == 0


class TestLedgerTotals:
    def test_empty_ledger(self):
        ledger = CommunicationLedger()
        assert ledger.total_bits == 0
        assert ledger.rounds == 0

    def test_upstream_counted(self):
        ledger = CommunicationLedger()
        ledger.charge_upstream(0, 10)
        ledger.charge_upstream(1, 5)
        assert ledger.total_bits == 15
        assert ledger.upstream_bits == 15
        assert ledger.downstream_bits == 0

    def test_downstream_counted(self):
        ledger = CommunicationLedger()
        ledger.charge_downstream(0, 7)
        assert ledger.downstream_bits == 7
        assert ledger.upstream_bits == 0

    def test_broadcast_charges_per_player(self):
        ledger = CommunicationLedger()
        ledger.charge_broadcast(4, 3)
        assert ledger.total_bits == 12
        assert ledger.downstream_bits == 12

    def test_rounds_counted(self):
        ledger = CommunicationLedger()
        ledger.begin_round()
        ledger.begin_round()
        assert ledger.rounds == 2

    def test_player_bits_upstream_only(self):
        ledger = CommunicationLedger()
        ledger.charge_upstream(2, 9)
        ledger.charge_downstream(2, 100)
        assert ledger.player_bits(2) == 9

    def test_player_bits_separates_players(self):
        ledger = CommunicationLedger()
        ledger.charge_upstream(0, 4)
        ledger.charge_upstream(1, 6)
        assert ledger.player_bits(0) == 4
        assert ledger.player_bits(1) == 6
        assert ledger.player_bits(2) == 0


class TestLabels:
    def test_explicit_label(self):
        ledger = CommunicationLedger()
        ledger.charge_upstream(0, 5, label="phase1")
        summary = ledger.summary()
        assert summary.bits_by_label["phase1"] == 5

    def test_scope_labels_messages(self):
        ledger = CommunicationLedger()
        with ledger.scope("sampling"):
            ledger.charge_upstream(0, 3)
            ledger.charge_downstream(1, 2)
        summary = ledger.summary()
        assert summary.bits_by_label["sampling"] == 5

    def test_nested_scopes_use_innermost(self):
        ledger = CommunicationLedger()
        with ledger.scope("outer"):
            with ledger.scope("inner"):
                ledger.charge_upstream(0, 1)
            ledger.charge_upstream(0, 2)
        summary = ledger.summary()
        assert summary.bits_by_label["inner"] == 1
        assert summary.bits_by_label["outer"] == 2

    def test_unlabelled_grouped(self):
        ledger = CommunicationLedger()
        ledger.charge_upstream(0, 4)
        assert ledger.summary().bits_by_label["(unlabelled)"] == 4


class TestSummary:
    def test_summary_fields(self):
        ledger = CommunicationLedger()
        ledger.begin_round()
        ledger.charge_downstream(0, 2)
        ledger.charge_upstream(0, 8)
        summary = ledger.summary()
        assert summary.total_bits == 10
        assert summary.upstream_bits == 8
        assert summary.downstream_bits == 2
        assert summary.rounds == 1
        assert summary.messages == 2

    def test_bits_by_player_excludes_coordinator(self):
        ledger = CommunicationLedger()
        ledger.charge_upstream(0, 5)
        ledger.charge_downstream(0, 7)
        assert ledger.summary().bits_by_player == {0: 5}

    def test_records_immutable_view(self):
        ledger = CommunicationLedger(record_messages=True)
        ledger.charge_upstream(0, 1)
        records = ledger.records
        assert len(records) == 1
        assert isinstance(records, tuple)

    def test_records_opt_in(self):
        # The aggregate-only default retains no transcript and says so
        # loudly instead of silently answering with nothing.
        ledger = CommunicationLedger()
        ledger.charge_upstream(0, 1)
        assert not ledger.record_messages
        with pytest.raises(RuntimeError):
            _ = ledger.records

    def test_recording_mode_keeps_directions_and_labels(self):
        ledger = CommunicationLedger(record_messages=True)
        with ledger.scope("phase"):
            ledger.charge_upstream(1, 4)
            ledger.charge_downstream(2, 3)
        ledger.charge_broadcast(2, 5, label="post")
        senders = [r.sender for r in ledger.records]
        receivers = [r.receiver for r in ledger.records]
        labels = [r.label for r in ledger.records]
        assert senders == [1, COORDINATOR, COORDINATOR, COORDINATOR]
        assert receivers == [COORDINATOR, 2, 0, 1]
        assert labels == ["phase", "phase", "post", "post"]

    def test_aggregates_match_recorded_transcript(self):
        # The running counters must answer exactly what a walk over the
        # retained records would.
        ledger = CommunicationLedger(record_messages=True)
        ledger.begin_round()
        with ledger.scope("a"):
            ledger.charge_upstream(0, 5)
            ledger.charge_upstream(1, 7)
        ledger.charge_downstream(0, 2, label="b")
        ledger.charge_broadcast(3, 4)
        records = ledger.records
        assert ledger.total_bits == sum(r.bits for r in records)
        assert ledger.upstream_bits == sum(
            r.bits for r in records if r.receiver == COORDINATOR
        )
        assert ledger.downstream_bits == sum(
            r.bits for r in records if r.sender == COORDINATOR
        )
        assert ledger.summary().messages == len(records)

    def test_str_contains_totals(self):
        ledger = CommunicationLedger()
        ledger.charge_upstream(0, 3)
        assert "total=3b" in str(ledger.summary())

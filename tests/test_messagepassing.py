"""Tests for the message-passing model and its coordinator equivalence."""

import pytest

from repro.comm.coordinator import CoordinatorRuntime
from repro.comm.encoding import bits_for_universe
from repro.comm.ledger import CommunicationLedger
from repro.comm.messagepassing import (
    MessagePassingRecord,
    MessagePassingRuntime,
    coordinator_cost_of_transcript,
    message_passing_cost_of_coordinator_run,
    simulate_with_coordinator,
)
from repro.comm.players import Player
from repro.comm.randomness import SharedRandomness


def players(k: int = 4, n: int = 10) -> list[Player]:
    return [Player(j, n, [(0, j + 1)] if j + 1 < n else []) for j in range(k)]


class TestRecord:
    def test_self_message_rejected(self):
        with pytest.raises(ValueError):
            MessagePassingRecord(1, 1, "x", 4)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            MessagePassingRecord(0, 1, "x", -1)


class TestRuntime:
    def test_send_records(self):
        rt = MessagePassingRuntime(players())
        rt.send(0, 2, "hello", 5)
        rt.send(2, 1, "world", 7)
        assert rt.total_bits == 12
        assert rt.transcript[0].recipient == 2

    def test_bad_ids_rejected(self):
        rt = MessagePassingRuntime(players())
        with pytest.raises(ValueError):
            rt.send(0, 9, "x", 1)
        with pytest.raises(ValueError):
            rt.send(-1, 0, "x", 1)

    def test_empty_players_rejected(self):
        with pytest.raises(ValueError):
            MessagePassingRuntime([])


class TestToCoordinator:
    def test_overhead_is_log_k_per_message(self):
        k = 8
        rt = MessagePassingRuntime(players(k))
        rt.send(0, 1, "a", 10)
        rt.send(3, 7, "b", 20)
        cost = coordinator_cost_of_transcript(rt.transcript, k)
        routing = bits_for_universe(k)
        assert cost == (2 * 10 + routing) + (2 * 20 + routing)

    def test_simulation_ledger_matches_formula(self):
        k = 5
        rt = MessagePassingRuntime(players(k))
        rt.send(0, 1, "a", 9)
        rt.send(1, 4, "b", 3)
        ledger = simulate_with_coordinator(rt)
        assert ledger.total_bits == coordinator_cost_of_transcript(
            rt.transcript, k
        )
        assert ledger.rounds == 2

    def test_small_k_rejected(self):
        with pytest.raises(ValueError):
            coordinator_cost_of_transcript([], k=1)

    def test_overhead_factor_bounded_by_log_k(self):
        # Section 2's claim: the simulation overhead is a factor <= ~log k
        # (plus the factor 2 from store-and-forward).
        k = 16
        rt = MessagePassingRuntime(players(k))
        for sender in range(k - 1):
            rt.send(sender, sender + 1, "x", 8)
        simulated = coordinator_cost_of_transcript(rt.transcript, k)
        assert simulated <= rt.total_bits * (2 + bits_for_universe(k))


class TestFromCoordinator:
    # Replaying a coordinator run point-to-point needs the per-message
    # transcript, which is opt-in on the aggregate-first ledger.
    def test_appointed_player_messages_free(self):
        rt = CoordinatorRuntime(
            players(3), SharedRandomness(1),
            ledger=CommunicationLedger(record_messages=True),
        )
        rt.collect(compute=lambda p: 0, response_bits=lambda _: 6)
        mp_cost = message_passing_cost_of_coordinator_run(
            rt.ledger, coordinator_player=0
        )
        # Player 0's own request+response become local: 2 x (1+6) saved...
        # requests are 1 bit each.
        assert mp_cost == rt.ledger.total_bits - 7

    def test_zero_overhead_direction(self):
        rt = CoordinatorRuntime(
            players(4), SharedRandomness(1),
            ledger=CommunicationLedger(record_messages=True),
        )
        rt.collect(compute=lambda p: 0, response_bits=lambda _: 5)
        mp_cost = message_passing_cost_of_coordinator_run(rt.ledger)
        assert mp_cost <= rt.ledger.total_bits

"""Tests for the simultaneous protocols (Algorithms 7-11)."""

import math

import pytest

from repro.core.oblivious import ObliviousParams, find_triangle_sim_oblivious
from repro.core.simultaneous_high import SimHighParams, find_triangle_sim_high
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.graphs.generators import (
    bipartite_triangle_free,
    far_instance,
    skewed_hub_graph,
)
from repro.graphs.partition import (
    partition_adversarial_skew,
    partition_disjoint,
    partition_with_duplication,
)
from repro.graphs.triangles import iter_triangles


def detection_rate(protocol, partition, params, seeds=6):
    found = 0
    for seed in range(seeds):
        if protocol(partition, params, seed=seed).found:
            found += 1
    return found / seeds


class TestSimHighParams:
    def test_sample_size_formula(self):
        params = SimHighParams(epsilon=0.1, c=2.0)
        expected = 2.0 * (1000 ** 2 / (0.1 * 40.0)) ** (1 / 3)
        assert params.sample_size(1000, 40.0) == math.ceil(expected)

    def test_sample_clamped_to_n(self):
        assert SimHighParams(c=100.0).sample_size(50, 2.0) == 50

    def test_zero_degree(self):
        assert SimHighParams().sample_size(100, 0.0) == 0

    def test_edge_cap_positive(self):
        assert SimHighParams().edge_cap(1000, 30.0, 100) >= 1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            SimHighParams(epsilon=2.0)
        with pytest.raises(ValueError):
            SimHighParams(c=0.0)


class TestSimHighDetection:
    def test_detects_on_dense_far_instance(self):
        n = 400
        instance = far_instance(n, math.sqrt(n), 0.25, seed=1)
        partition = partition_disjoint(instance.graph, 3, seed=2)
        rate = detection_rate(
            find_triangle_sim_high, partition,
            SimHighParams(epsilon=0.25, delta=0.1, c=2.0),
        )
        assert rate >= 0.8

    def test_one_sided(self):
        control = bipartite_triangle_free(300, 20.0, seed=3)
        partition = partition_disjoint(control, 3, seed=4)
        rate = detection_rate(
            find_triangle_sim_high, partition, SimHighParams(epsilon=0.25)
        )
        assert rate == 0.0

    def test_witness_valid(self):
        instance = far_instance(300, 18.0, 0.25, seed=5)
        partition = partition_disjoint(instance.graph, 3, seed=6)
        result = find_triangle_sim_high(
            partition, SimHighParams(epsilon=0.25, c=2.5), seed=7
        )
        if result.found:
            assert result.triangle in set(iter_triangles(instance.graph))

    def test_bernoulli_variant(self):
        instance = far_instance(400, 20.0, 0.25, seed=8)
        partition = partition_disjoint(instance.graph, 3, seed=9)
        rate = detection_rate(
            find_triangle_sim_high, partition,
            SimHighParams(
                epsilon=0.25, c=2.0, bernoulli_sampling=True, capped=False
            ),
        )
        assert rate >= 0.8

    def test_single_round(self):
        instance = far_instance(200, 15.0, 0.25, seed=10)
        partition = partition_disjoint(instance.graph, 3, seed=11)
        result = find_triangle_sim_high(partition, seed=12)
        assert result.cost.rounds == 1

    def test_cap_respected(self):
        instance = far_instance(300, 18.0, 0.3, seed=13)
        partition = partition_disjoint(instance.graph, 3, seed=14)
        params = SimHighParams(epsilon=0.3, delta=0.2, c=2.0)
        result = find_triangle_sim_high(partition, params, seed=15)
        cap = result.details["edge_cap"]
        from repro.comm.encoding import edge_bits

        per_player_limit = cap * edge_bits(300)
        for player in range(3):
            assert result.cost.bits_by_player.get(player, 0) <= (
                per_player_limit
            )


class TestSimLowParams:
    def test_default_c_from_delta(self):
        params = SimLowParams(delta=0.1)
        assert params.effective_c == pytest.approx(8.0 / 0.9)

    def test_probabilities(self):
        params = SimLowParams(c=2.0)
        assert params.p_dense_catcher(8.0) == pytest.approx(0.25)
        assert params.p_dense_catcher(1.0) == 1.0
        assert params.p_birthday(10_000) == pytest.approx(0.02)

    def test_edge_cap_formula(self):
        params = SimLowParams(c=2.0, delta=0.1)
        expected = 2 * 4 * (math.sqrt(400) + 5.0) * 20
        assert params.edge_cap(400, 5.0) == math.ceil(expected)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            SimLowParams(delta=0.0)
        with pytest.raises(ValueError):
            SimLowParams(c=-1.0)


class TestSimLowDetection:
    def test_detects_on_sparse_far_instance(self):
        instance = far_instance(1000, 5.0, 0.25, seed=1)
        partition = partition_disjoint(instance.graph, 3, seed=2)
        rate = detection_rate(
            find_triangle_sim_low, partition,
            SimLowParams(epsilon=0.25, delta=0.1),
        )
        assert rate >= 0.8

    def test_one_sided(self):
        control = bipartite_triangle_free(600, 5.0, seed=3)
        partition = partition_disjoint(control, 3, seed=4)
        rate = detection_rate(
            find_triangle_sim_low, partition, SimLowParams(epsilon=0.25)
        )
        assert rate == 0.0

    def test_hub_concentrated_triangles(self):
        # The variance case AlgLow is designed for: triangles through a
        # few high-degree sources, caught via S.
        graph = skewed_hub_graph(900, num_hubs=2, vees_per_hub=100, seed=5)
        partition = partition_disjoint(graph, 3, seed=6)
        rate = detection_rate(
            find_triangle_sim_low, partition,
            SimLowParams(epsilon=0.2, delta=0.1), seeds=8,
        )
        assert rate >= 0.6

    def test_duplication_tolerated(self):
        instance = far_instance(800, 5.0, 0.25, seed=7)
        partition = partition_with_duplication(instance.graph, 4, seed=8)
        rate = detection_rate(
            find_triangle_sim_low, partition,
            SimLowParams(epsilon=0.25, delta=0.1),
        )
        assert rate >= 0.8

    def test_single_round(self):
        instance = far_instance(400, 4.0, 0.25, seed=9)
        partition = partition_disjoint(instance.graph, 3, seed=10)
        result = find_triangle_sim_low(partition, seed=11)
        assert result.cost.rounds == 1

    def test_details_sample_sizes(self):
        instance = far_instance(400, 4.0, 0.25, seed=12)
        partition = partition_disjoint(instance.graph, 3, seed=13)
        result = find_triangle_sim_low(partition, seed=14)
        dense_size, birthday_size = result.details["sample_sizes"]
        assert dense_size > 0
        assert birthday_size > 0


class TestOblivious:
    def test_detects_sparse(self):
        instance = far_instance(800, 5.0, 0.25, seed=1)
        partition = partition_disjoint(instance.graph, 4, seed=2)
        rate = detection_rate(
            find_triangle_sim_oblivious, partition,
            ObliviousParams(epsilon=0.25, delta=0.1),
        )
        assert rate >= 0.8

    def test_detects_dense(self):
        n = 400
        instance = far_instance(n, math.sqrt(n), 0.25, seed=3)
        partition = partition_disjoint(instance.graph, 4, seed=4)
        rate = detection_rate(
            find_triangle_sim_oblivious, partition,
            ObliviousParams(epsilon=0.25, delta=0.1),
        )
        assert rate >= 0.8

    def test_one_sided(self):
        control = bipartite_triangle_free(500, 6.0, seed=5)
        partition = partition_disjoint(control, 4, seed=6)
        rate = detection_rate(
            find_triangle_sim_oblivious, partition, ObliviousParams()
        )
        assert rate == 0.0

    def test_skewed_partition_relevant_players_suffice(self):
        instance = far_instance(800, 5.0, 0.3, seed=7)
        partition = partition_adversarial_skew(
            instance.graph, 5, seed=8, heavy_fraction=0.9
        )
        rate = detection_rate(
            find_triangle_sim_oblivious, partition,
            ObliviousParams(epsilon=0.3, delta=0.1), seeds=8,
        )
        assert rate >= 0.6

    def test_guess_range_covers_true_density(self):
        params = ObliviousParams(epsilon=0.2)
        k, n = 4, 4096
        local = 2.0  # a relevant player's view of a d=8 graph
        guesses = params.guess_range_for_player(local, k, n)
        covered = [2 ** i for i in guesses]
        assert any(4.0 <= guess <= 2 * 8.0 for guess in covered)

    def test_irrelevant_player_sends_little(self):
        params = ObliviousParams(epsilon=0.2)
        assert len(params.guess_range_for_player(0.0, 4, 1024)) == 0

    def test_single_round(self):
        instance = far_instance(300, 5.0, 0.25, seed=9)
        partition = partition_disjoint(instance.graph, 3, seed=10)
        result = find_triangle_sim_oblivious(partition, seed=11)
        assert result.cost.rounds == 1

    def test_details_report_winning_guess(self):
        instance = far_instance(600, 5.0, 0.3, seed=12)
        partition = partition_disjoint(instance.graph, 3, seed=13)
        result = find_triangle_sim_oblivious(partition, seed=14)
        if result.found:
            assert result.details["winning_guess_index"] is not None

"""Failure injection and degenerate-input robustness.

Protocols must degrade gracefully, never crash or fabricate witnesses:
starved budgets may *miss* (the permitted one-sided failure) but must stay
sound; degenerate topologies (empty graphs, k=1, k > n, all-isolated
inputs, promise violations) must be handled.
"""



from repro.core.degree_approx import DegreeApproxParams
from repro.core.oblivious import ObliviousParams, find_triangle_sim_oblivious
from repro.core.simultaneous_high import SimHighParams, find_triangle_sim_high
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.core.unrestricted import (
    UnrestrictedParams,
    find_triangle_unrestricted,
)
import pytest

from repro.graphs.generators import far_instance, gnd
from repro.graphs.graph import Graph, canonical_edge
from repro.graphs.partition import (
    EdgePartition,
    partition_by_vertex,
    partition_concentrate_edges,
    partition_disjoint,
)


def far_partition(n=300, d=5.0, epsilon=0.3, k=3, seed=1):
    instance = far_instance(n, d, epsilon, seed=seed)
    return instance, partition_disjoint(instance.graph, k, seed=seed + 1)


class TestStarvedBudgets:
    def test_zero_ish_caps_sim_low(self):
        _, partition = far_partition()
        params = SimLowParams(epsilon=0.3, delta=0.2, c=0.01)
        result = find_triangle_sim_low(partition, params, seed=1)
        # May miss, must not fabricate.
        if result.found:
            a, b, c = result.triangle
            assert partition.graph.has_edge(a, b)

    def test_tiny_sample_sim_high(self):
        _, partition = far_partition(d=20.0)
        params = SimHighParams(epsilon=0.3, delta=0.2, c=0.01)
        result = find_triangle_sim_high(partition, params, seed=2)
        assert result.total_bits >= 1

    def test_unrestricted_one_sample(self):
        _, partition = far_partition()
        params = UnrestrictedParams(
            epsilon=0.3, delta=0.2, known_average_degree=5.0,
            samples_per_bucket=1, max_candidates=1,
            degree_params=DegreeApproxParams(
                alpha=2.0, experiments_override=2
            ),
        )
        result = find_triangle_unrestricted(partition, params, seed=3)
        assert result.triangle is None or len(result.triangle) == 3

    def test_oblivious_uncapped_still_sound(self):
        _, partition = far_partition()
        params = ObliviousParams(epsilon=0.3, delta=0.2, capped=False)
        result = find_triangle_sim_oblivious(partition, params, seed=4)
        if result.found:
            a, b, c = result.triangle
            assert partition.graph.has_edge(b, c)

    def test_savage_caps_miss_but_no_crash(self):
        _, partition = far_partition()
        params = ObliviousParams(
            epsilon=0.3, delta=0.2, cap_scale=0.0001
        )
        result = find_triangle_sim_oblivious(partition, params, seed=5)
        assert result.total_bits >= 1


class TestDegenerateTopologies:
    def test_single_player(self):
        instance, _ = far_partition()
        partition = EdgePartition(
            instance.graph, (frozenset(instance.graph.edges()),)
        )
        result = find_triangle_sim_low(
            partition, SimLowParams(epsilon=0.3, delta=0.1), seed=1
        )
        assert result.found  # one player holds everything

    def test_more_players_than_vertices(self):
        graph = Graph(6, [(0, 1), (0, 2), (1, 2)])
        partition = partition_disjoint(graph, 20, seed=2)
        result = find_triangle_sim_low(
            partition, SimLowParams(epsilon=0.3, delta=0.1), seed=3
        )
        if result.found:
            assert result.triangle == (0, 1, 2)

    def test_empty_graph_everywhere(self):
        graph = Graph(50)
        partition = EdgePartition(graph, (frozenset(), frozenset()))
        assert not find_triangle_sim_low(partition, seed=1).found
        assert not find_triangle_sim_high(partition, seed=1).found
        assert not find_triangle_sim_oblivious(partition, seed=1).found
        assert not find_triangle_unrestricted(
            partition,
            UnrestrictedParams(epsilon=0.2, delta=0.2,
                               samples_per_bucket=2, max_candidates=2),
            seed=1,
        ).found

    def test_single_edge_graph(self):
        graph = Graph(10, [(0, 1)])
        partition = partition_disjoint(graph, 3, seed=4)
        assert not find_triangle_sim_oblivious(partition, seed=5).found

    def test_one_player_holds_nothing(self):
        instance, _ = far_partition()
        edges = frozenset(instance.graph.edges())
        partition = EdgePartition(
            instance.graph, (edges, frozenset(), frozenset())
        )
        result = find_triangle_sim_low(
            partition, SimLowParams(epsilon=0.3, delta=0.1), seed=6
        )
        assert result.found

    def test_vertex_locality_partition(self):
        instance, _ = far_partition(n=400)
        partition = partition_by_vertex(instance.graph, 4, seed=7)
        result = find_triangle_sim_low(
            partition, SimLowParams(epsilon=0.3, delta=0.1), seed=8
        )
        assert result.found


class TestPromiseViolations:
    def test_barely_non_free_graph(self):
        # One triangle in a large graph: nowhere near epsilon-far.  The
        # tester may miss (allowed); it must never crash or fabricate.
        graph = gnd(500, 3.0, seed=9)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(0, 2)
        partition = partition_disjoint(graph, 3, seed=10)
        for protocol in (
            lambda: find_triangle_sim_low(partition, seed=11),
            lambda: find_triangle_sim_oblivious(partition, seed=11),
        ):
            result = protocol()
            if result.found:
                a, b, c = result.triangle
                assert graph.has_edge(a, b)
                assert graph.has_edge(a, c)
                assert graph.has_edge(b, c)

    def test_wrong_degree_hint(self):
        # Lying to the protocol about d must not break soundness.
        instance, partition = far_partition(d=5.0)
        result = find_triangle_sim_high(
            partition,
            SimHighParams(epsilon=0.3, delta=0.2,
                          known_average_degree=500.0),
            seed=12,
        )
        if result.found:
            assert instance.graph.has_edge(*result.witness_edges[0])

    def test_epsilon_one(self):
        # epsilon = 1: every edge is triangle mass; extreme but legal.
        instance, partition = far_partition(epsilon=0.9)
        result = find_triangle_sim_low(
            partition, SimLowParams(epsilon=1.0, delta=0.1), seed=13
        )
        assert result.found

    def test_unrestricted_wrong_degree_estimate_path(self):
        # Oblivious-degree mode on a promise-violating sparse graph.
        graph = gnd(200, 2.0, seed=14)
        partition = partition_disjoint(graph, 3, seed=15)
        params = UnrestrictedParams(
            epsilon=0.3, delta=0.2, samples_per_bucket=6, max_candidates=3,
            degree_params=DegreeApproxParams(
                alpha=2.0, experiments_override=4
            ),
        )
        result = find_triangle_unrestricted(partition, params, seed=16)
        if result.found:
            a, b, c = result.triangle
            assert graph.has_edge(a, b)


def _triangle_edges(triangles):
    return [
        edge
        for a, b, c in triangles
        for edge in ((a, b), (a, c), (b, c))
    ]


def concentrated_partition(n=300, d=5.0, epsilon=0.3, k=4, seed=21):
    """Every planted-triangle edge on player 0, the rest spread thin.

    The targeted adversary: no player other than 0 holds a complete
    planted triangle, so any cross-player detection path carries the
    entire burden.
    """
    instance = far_instance(n, d, epsilon, seed=seed)
    focus = _triangle_edges(instance.planted_triangles)
    partition = partition_concentrate_edges(
        instance.graph, k, focus, seed=seed + 1
    )
    return instance, partition


class TestAdversarialConcentration:
    """All planted-triangle edges concentrated on one player.

    The split is legal under the model (any edge distribution is), but
    maximally hostile to protocols that rely on some player seeing a
    whole triangle.  Missing is the permitted one-sided failure;
    reporting a triangle that is not in the graph never is.
    """

    def test_focus_edges_land_on_player_zero(self):
        instance, partition = concentrated_partition()
        planted = {
            canonical_edge(u, v)
            for u, v in _triangle_edges(instance.planted_triangles)
        }
        assert planted <= partition.views[0]
        for view in partition.views[1:]:
            assert not planted & view

    def test_no_other_player_holds_a_full_triangle(self):
        instance, partition = concentrated_partition()
        for view in partition.views[1:]:
            for a, b, c in instance.planted_triangles:
                held = {
                    canonical_edge(*edge) in view
                    for edge in ((a, b), (a, c), (b, c))
                }
                assert held != {True}

    def test_sim_low_sound_under_concentration(self):
        instance, partition = concentrated_partition()
        result = find_triangle_sim_low(
            partition, SimLowParams(epsilon=0.3, delta=0.2), seed=31
        )
        if result.found:
            a, b, c = result.triangle
            assert instance.graph.has_edge(a, b)
            assert instance.graph.has_edge(a, c)
            assert instance.graph.has_edge(b, c)

    def test_sim_high_sound_under_concentration(self):
        instance, partition = concentrated_partition(d=20.0)
        result = find_triangle_sim_high(
            partition, SimHighParams(epsilon=0.3, delta=0.2), seed=32
        )
        if result.found:
            a, b, c = result.triangle
            assert instance.graph.has_edge(a, b)
            assert instance.graph.has_edge(a, c)
            assert instance.graph.has_edge(b, c)

    def test_oblivious_sound_under_concentration(self):
        instance, partition = concentrated_partition()
        result = find_triangle_sim_oblivious(
            partition, ObliviousParams(epsilon=0.3, delta=0.2), seed=33
        )
        if result.found:
            a, b, c = result.triangle
            assert instance.graph.has_edge(a, b)
            assert instance.graph.has_edge(a, c)
            assert instance.graph.has_edge(b, c)

    def test_unrestricted_sound_under_concentration(self):
        instance, partition = concentrated_partition()
        params = UnrestrictedParams(
            epsilon=0.3, delta=0.2, known_average_degree=5.0,
            samples_per_bucket=4, max_candidates=3,
            degree_params=DegreeApproxParams(
                alpha=2.0, experiments_override=3
            ),
        )
        result = find_triangle_unrestricted(partition, params, seed=34)
        if result.found:
            a, b, c = result.triangle
            assert instance.graph.has_edge(a, b)
            assert instance.graph.has_edge(a, c)
            assert instance.graph.has_edge(b, c)

    def test_player_zero_alone_still_detects(self):
        # Player 0 holds every planted triangle whole, so a protocol
        # with a within-view detection path should still find one.
        _, partition = concentrated_partition(k=3, seed=23)
        result = find_triangle_sim_low(
            partition, SimLowParams(epsilon=0.3, delta=0.1), seed=35
        )
        if result.found:
            a, b, c = result.triangle
            assert partition.graph.has_edge(a, b)

    def test_rejects_focus_edges_outside_graph(self):
        graph = Graph(6, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="not in the graph"):
            partition_concentrate_edges(graph, 3, [(4, 5)], seed=1)

    def test_k1_degenerates_to_all_to_one(self):
        instance, _ = far_partition(n=60)
        partition = partition_concentrate_edges(
            instance.graph, 1, _triangle_edges(instance.planted_triangles),
        )
        assert partition.views[0] == frozenset(instance.graph.edges())


class TestExtremePparameters:
    def test_sim_high_c_enormous(self):
        _, partition = far_partition(d=15.0, n=200)
        params = SimHighParams(epsilon=0.3, delta=0.2, c=1000.0)
        result = find_triangle_sim_high(partition, params, seed=17)
        assert result.found  # sample is everything

    def test_sim_low_c_enormous(self):
        _, partition = far_partition(n=200)
        params = SimLowParams(epsilon=0.3, delta=0.2, c=1000.0)
        result = find_triangle_sim_low(partition, params, seed=18)
        assert result.found

    def test_degree_approx_extreme_alpha(self):
        from repro.comm.coordinator import CoordinatorRuntime
        from repro.comm.players import make_players
        from repro.comm.randomness import SharedRandomness
        from repro.core.degree_approx import approx_degree

        graph = Graph(30, [(0, i) for i in range(1, 21)])
        partition = partition_disjoint(graph, 3, seed=19)
        rt = CoordinatorRuntime(make_players(partition), SharedRandomness(20))
        estimate = approx_degree(
            rt, 0, DegreeApproxParams(alpha=100.0, experiments_override=8)
        )
        assert estimate.value >= 1

"""End-to-end integration tests across subsystems."""

import math


from repro.comm import CoordinatorRuntime, SharedRandomness, make_players
from repro.core import (
    DegreeApproxParams,
    SimLowParams,
    UnrestrictedParams,
    approx_average_degree,
    check_triangle_freeness,
    exact_triangle_detection,
    find_triangle_sim_low,
    find_triangle_sim_oblivious,
    find_triangle_unrestricted,
)
from repro.graphs import (
    far_instance,
    is_epsilon_far_certified,
    partition_disjoint,
    partition_with_duplication,
)
from repro.lowerbounds import MuDistribution, reduction_partition, sample_bm_instance
from repro.streaming import ReservoirTriangleFinder, streaming_to_oneway


class TestEndToEndTesting:
    def test_full_pipeline_sparse(self):
        """Generate -> certify -> partition -> test -> verify witness."""
        instance = far_instance(1200, 5.0, 0.25, seed=1)
        assert is_epsilon_far_certified(
            instance.graph, instance.epsilon_certified * 0.99
        )
        partition = partition_disjoint(instance.graph, 5, seed=2)
        result = find_triangle_sim_low(
            partition, SimLowParams(epsilon=0.25, delta=0.1), seed=3
        )
        assert result.found
        a, b, c = result.triangle
        assert instance.graph.has_edge(a, b)
        assert instance.graph.has_edge(a, c)
        assert instance.graph.has_edge(b, c)
        # Testing beats exact by a real margin on this input.
        exact = exact_triangle_detection(partition)
        assert result.total_bits < exact.total_bits

    def test_unrestricted_beats_simultaneous_on_found_instances(self):
        instance = far_instance(900, 5.0, 0.3, seed=4)
        partition = partition_disjoint(instance.graph, 3, seed=5)
        params = UnrestrictedParams(
            epsilon=0.3,
            delta=0.2,
            known_average_degree=5.0,
            samples_per_bucket=24,
            max_candidates=8,
            degree_params=DegreeApproxParams(
                alpha=math.sqrt(3.0), experiments_override=8
            ),
        )
        interactive = find_triangle_unrestricted(partition, params, seed=6)
        simultaneous = find_triangle_sim_low(
            partition, SimLowParams(epsilon=0.3, delta=0.2), seed=6
        )
        assert interactive.found and simultaneous.found
        # Interaction's early exit is cheaper than the one-shot protocol.
        assert interactive.total_bits < simultaneous.total_bits

    def test_degree_estimation_feeds_protocol(self):
        """Corollary 3.22 flow: estimate d, then test, on one runtime."""
        instance = far_instance(500, 6.0, 0.3, seed=7)
        partition = partition_with_duplication(instance.graph, 4, seed=8)
        rt = CoordinatorRuntime(
            make_players(partition), SharedRandomness(9)
        )
        estimate = approx_average_degree(
            rt, DegreeApproxParams(alpha=2.0, experiments_override=24)
        )
        true = instance.graph.average_degree()
        assert true / 6 <= estimate <= 6 * true

    def test_wrapper_agrees_with_direct_calls(self):
        instance = far_instance(700, 5.0, 0.3, seed=10)
        partition = partition_disjoint(instance.graph, 3, seed=11)
        wrapper = check_triangle_freeness(
            partition, protocol="sim-low", seed=12, epsilon=0.3, delta=0.1
        )
        direct = find_triangle_sim_low(
            partition, SimLowParams(epsilon=0.3, delta=0.1), seed=12
        )
        assert wrapper == direct.verdict_triangle_free()


class TestLowerBoundPipelines:
    def test_mu_to_streaming_chain(self):
        """µ sample -> 3-player split -> streaming chain -> triangle edge."""
        mu = MuDistribution(part_size=40, gamma=1.5)
        sample = mu.sample(seed=1)
        run = streaming_to_oneway(
            sample.partition,
            lambda: ReservoirTriangleFinder(
                sample.graph.n, reservoir_size=400, seed=2
            ),
        )
        if run.output is not None:
            a, b, c = run.output
            assert sample.graph.has_edge(a, b)
            assert sample.graph.has_edge(b, c)
            assert sample.graph.has_edge(a, c)

    def test_bm_reduction_through_protocols(self):
        """BM instances flow through the standard protocol interface."""
        zeros = reduction_partition(
            sample_bm_instance(30, "zeros", seed=3), k=4
        )
        ones = reduction_partition(
            sample_bm_instance(30, "ones", seed=3), k=4
        )
        assert not check_triangle_freeness(zeros, protocol="exact")
        assert check_triangle_freeness(ones, protocol="exact")
        # The oblivious tester also never errs on the triangle-free side.
        assert check_triangle_freeness(ones, protocol="sim-oblivious", seed=4)

    def test_mu_hardness_for_cheap_protocols(self):
        """On µ, a budget-starved simultaneous protocol finds triangles
        rarely, while generous budgets succeed — the qualitative content
        of the Omega((nd)^{1/3}) bound."""
        mu = MuDistribution(part_size=50, gamma=1.3)
        starved_hits = 0
        generous_hits = 0
        trials = 6
        for seed in range(trials):
            sample = mu.sample(seed=seed)
            from repro.graphs.triangles import is_triangle_free

            if is_triangle_free(sample.graph):
                continue
            starved = find_triangle_sim_low(
                sample.partition,
                SimLowParams(epsilon=0.2, delta=0.2, c=0.15),
                seed=seed,
            )
            generous = find_triangle_sim_low(
                sample.partition,
                SimLowParams(epsilon=0.2, delta=0.2, c=6.0),
                seed=seed,
            )
            starved_hits += starved.found
            generous_hits += generous.found
        assert generous_hits > starved_hits


class TestDeterminism:
    def test_same_seed_same_run(self):
        instance = far_instance(400, 5.0, 0.3, seed=13)
        partition = partition_disjoint(instance.graph, 3, seed=14)
        first = find_triangle_sim_oblivious(partition, seed=15)
        second = find_triangle_sim_oblivious(partition, seed=15)
        assert first.found == second.found
        assert first.triangle == second.triangle
        assert first.total_bits == second.total_bits

    def test_different_seed_may_differ_but_stays_correct(self):
        instance = far_instance(400, 5.0, 0.3, seed=16)
        partition = partition_disjoint(instance.graph, 3, seed=17)
        for seed in range(4):
            result = find_triangle_sim_low(partition, seed=seed)
            if result.found:
                a, b, c = result.triangle
                assert instance.graph.has_edge(a, b)

"""Tests for the streaming substrate and reductions (repro.streaming)."""

import pytest

from repro.comm.encoding import edge_bits
from repro.graphs.generators import far_instance, gnd
from repro.graphs.graph import Graph
from repro.graphs.partition import partition_disjoint
from repro.graphs.triangles import is_triangle_free, iter_triangles
from repro.lowerbounds.distributions import MuDistribution
from repro.streaming.reduction import (
    oneway_cost_of_streaming,
    space_lower_bound_from_oneway,
    streaming_to_oneway,
)
from repro.streaming.stream import run_stream
from repro.streaming.triangle_stream import (
    CountingExactFinder,
    ReservoirTriangleFinder,
)


def triangle_stream():
    return [(0, 1), (0, 2), (1, 2)]


class TestExactFinder:
    def test_finds_triangle(self):
        finder = CountingExactFinder(5)
        run = run_stream(finder, triangle_stream())
        assert run.result == (0, 1, 2)

    def test_free_stream(self):
        finder = CountingExactFinder(5)
        run = run_stream(finder, [(0, 1), (1, 2), (2, 3)])
        assert run.result is None

    def test_space_linear_in_stream(self):
        graph = gnd(100, 6.0, seed=1)
        finder = CountingExactFinder(100)
        run = run_stream(finder, sorted(graph.edges()))
        assert run.peak_space_bits >= graph.num_edges * edge_bits(100)

    def test_elements_counted(self):
        run = run_stream(CountingExactFinder(5), triangle_stream())
        assert run.elements_processed == 3

    def test_state_roundtrip(self):
        first = CountingExactFinder(10)
        for edge in [(0, 1), (0, 2)]:
            first.process(edge)
        second = CountingExactFinder(10)
        second.import_state(first.export_state())
        second.process((1, 2))
        assert second.result() == (0, 1, 2)


class TestReservoirFinder:
    def test_finds_with_large_reservoir(self):
        instance = far_instance(200, 5.0, 0.3, seed=2)
        finder = ReservoirTriangleFinder(200, reservoir_size=600, seed=3)
        run = run_stream(finder, sorted(instance.graph.edges()))
        assert run.result is not None
        assert run.result in set(iter_triangles(instance.graph))

    def test_one_sided(self):
        graph = gnd(100, 3.0, seed=4)
        finder = ReservoirTriangleFinder(100, reservoir_size=50, seed=5)
        run = run_stream(finder, sorted(graph.edges()))
        if run.result is not None:
            a, b, c = run.result
            assert graph.has_edge(a, b)
            assert graph.has_edge(a, c)
            assert graph.has_edge(b, c)

    def test_space_bounded_by_reservoir(self):
        graph = gnd(300, 8.0, seed=6)
        reservoir = 20
        finder = ReservoirTriangleFinder(300, reservoir_size=reservoir, seed=7)
        run = run_stream(finder, sorted(graph.edges()))
        assert run.peak_space_bits <= (reservoir + 1) * edge_bits(300)

    def test_success_grows_with_space(self):
        mu = MuDistribution(part_size=40, gamma=1.2)
        rates = []
        for reservoir in (4, 200):
            successes = 0
            trials = 8
            for trial in range(trials):
                sample = mu.sample(seed=trial)
                if is_triangle_free(sample.graph):
                    continue
                finder = ReservoirTriangleFinder(
                    sample.graph.n, reservoir_size=reservoir, seed=trial
                )
                if run_stream(
                    finder, sorted(sample.graph.edges())
                ).result is not None:
                    successes += 1
            rates.append(successes / trials)
        assert rates[1] > rates[0]

    def test_minimum_reservoir_enforced(self):
        with pytest.raises(ValueError):
            ReservoirTriangleFinder(10, reservoir_size=1)

    def test_state_roundtrip(self):
        first = ReservoirTriangleFinder(10, reservoir_size=4, seed=1)
        for edge in [(0, 1), (0, 2)]:
            first.process(edge)
        second = ReservoirTriangleFinder(10, reservoir_size=4, seed=99)
        second.import_state(first.export_state())
        second.process((1, 2))
        assert second.result() == (0, 1, 2)


class TestReduction:
    def test_chain_matches_streaming_result_shape(self):
        instance = far_instance(150, 5.0, 0.3, seed=8)
        partition = partition_disjoint(instance.graph, 3, seed=9)
        run = streaming_to_oneway(
            partition, lambda: CountingExactFinder(150)
        )
        assert run.output is not None  # exact finder always succeeds

    def test_chain_cost_is_state_sizes(self):
        instance = far_instance(150, 5.0, 0.3, seed=10)
        partition = partition_disjoint(instance.graph, 3, seed=11)
        cost = oneway_cost_of_streaming(
            partition, lambda: CountingExactFinder(150)
        )
        # Two hops, each forwarding <= |E| edges worth of state.
        assert cost <= 2 * instance.graph.num_edges * edge_bits(150)
        assert cost > 0

    def test_reservoir_chain_bounded_cost(self):
        instance = far_instance(150, 5.0, 0.3, seed=12)
        partition = partition_disjoint(instance.graph, 3, seed=13)
        reservoir = 16
        cost = oneway_cost_of_streaming(
            partition,
            lambda: ReservoirTriangleFinder(150, reservoir, seed=14),
        )
        assert cost <= 2 * (reservoir + 1) * edge_bits(150)

    def test_single_player_rejected(self):
        graph = Graph(5, [(0, 1)])
        from repro.graphs.partition import EdgePartition

        partition = EdgePartition(graph, (frozenset({(0, 1)}),))
        with pytest.raises(ValueError):
            streaming_to_oneway(partition, lambda: CountingExactFinder(5))

    def test_space_transfer_formula(self):
        assert space_lower_bound_from_oneway(1000.0, hops=2) == 500.0
        with pytest.raises(ValueError):
            space_lower_bound_from_oneway(10.0, hops=0)

"""Tests for the streaming substrate and reductions (repro.streaming)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.encoding import edge_bits
from repro.graphs.generators import far_instance, gnd
from repro.graphs.graph import Graph
from repro.graphs.partition import partition_disjoint
from repro.graphs.triangles import is_triangle_free, iter_triangles
from repro.lowerbounds.distributions import MuDistribution
from repro.streaming.reduction import (
    oneway_cost_of_streaming,
    space_lower_bound_from_oneway,
    streaming_to_oneway,
)
from repro.streaming.stream import (
    canonical_row_batches,
    run_stream,
    run_stream_rows,
)
from repro.streaming.triangle_stream import (
    CountingExactFinder,
    ReservoirTriangleFinder,
)


def triangle_stream():
    return [(0, 1), (0, 2), (1, 2)]


class TestExactFinder:
    def test_finds_triangle(self):
        finder = CountingExactFinder(5)
        run = run_stream(finder, triangle_stream())
        assert run.result == (0, 1, 2)

    def test_free_stream(self):
        finder = CountingExactFinder(5)
        run = run_stream(finder, [(0, 1), (1, 2), (2, 3)])
        assert run.result is None

    def test_space_linear_in_stream(self):
        graph = gnd(100, 6.0, seed=1)
        finder = CountingExactFinder(100)
        run = run_stream(finder, sorted(graph.edges()))
        assert run.peak_space_bits >= graph.num_edges * edge_bits(100)

    def test_elements_counted(self):
        run = run_stream(CountingExactFinder(5), triangle_stream())
        assert run.elements_processed == 3

    def test_state_roundtrip(self):
        first = CountingExactFinder(10)
        for edge in [(0, 1), (0, 2)]:
            first.process(edge)
        second = CountingExactFinder(10)
        second.import_state(first.export_state())
        second.process((1, 2))
        assert second.result() == (0, 1, 2)

    def test_legacy_edge_state_imports_any_orientation(self):
        """Hand-built per-edge states normalize like the predecessor did."""
        finder = CountingExactFinder(10)
        finder.import_state(
            {"edges": [(5, 2), (2, 4), (5, 4)], "found": None}
        )
        assert finder.state_bits() == 3 * edge_bits(10)
        exported = finder.export_state()
        assert exported["rows"] == {
            2: (1 << 4) | (1 << 5), 4: 1 << 5
        }
        finder.process((2, 5))  # duplicate: must not double-count
        assert finder.state_bits() == 3 * edge_bits(10)
        # The mirror bits were rebuilt, so closure probes see the vee.
        finder.process((9, 2))
        finder.process((9, 4))
        finder.process((9, 5))
        assert finder.result() is not None


class TestReservoirFinder:
    def test_finds_with_large_reservoir(self):
        instance = far_instance(200, 5.0, 0.3, seed=2)
        finder = ReservoirTriangleFinder(200, reservoir_size=600, seed=3)
        run = run_stream(finder, sorted(instance.graph.edges()))
        assert run.result is not None
        assert run.result in set(iter_triangles(instance.graph))

    def test_one_sided(self):
        graph = gnd(100, 3.0, seed=4)
        finder = ReservoirTriangleFinder(100, reservoir_size=50, seed=5)
        run = run_stream(finder, sorted(graph.edges()))
        if run.result is not None:
            a, b, c = run.result
            assert graph.has_edge(a, b)
            assert graph.has_edge(a, c)
            assert graph.has_edge(b, c)

    def test_space_bounded_by_reservoir(self):
        graph = gnd(300, 8.0, seed=6)
        reservoir = 20
        finder = ReservoirTriangleFinder(300, reservoir_size=reservoir, seed=7)
        run = run_stream(finder, sorted(graph.edges()))
        assert run.peak_space_bits <= (reservoir + 1) * edge_bits(300)

    def test_success_grows_with_space(self):
        mu = MuDistribution(part_size=40, gamma=1.2)
        rates = []
        for reservoir in (4, 200):
            successes = 0
            trials = 8
            for trial in range(trials):
                sample = mu.sample(seed=trial)
                if is_triangle_free(sample.graph):
                    continue
                finder = ReservoirTriangleFinder(
                    sample.graph.n, reservoir_size=reservoir, seed=trial
                )
                if run_stream(
                    finder, sorted(sample.graph.edges())
                ).result is not None:
                    successes += 1
            rates.append(successes / trials)
        assert rates[1] > rates[0]

    def test_minimum_reservoir_enforced(self):
        with pytest.raises(ValueError):
            ReservoirTriangleFinder(10, reservoir_size=1)

    def test_state_roundtrip(self):
        first = ReservoirTriangleFinder(10, reservoir_size=4, seed=1)
        for edge in [(0, 1), (0, 2)]:
            first.process(edge)
        second = ReservoirTriangleFinder(10, reservoir_size=4, seed=99)
        second.import_state(first.export_state())
        second.process((1, 2))
        assert second.result() == (0, 1, 2)


EDGE_STREAMS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=19),
        st.integers(min_value=0, max_value=19),
    ).filter(lambda e: e[0] != e[1]).map(lambda e: (min(e), max(e))),
    max_size=60,
)


def _rows_of(edges, n=20):
    rows = [0] * n
    for u, v in edges:
        rows[u] |= 1 << v
        rows[v] |= 1 << u
    return rows


class TestRowBatching:
    """The row-batched interface is pinned to the per-edge predecessor."""

    @given(EDGE_STREAMS)
    @settings(max_examples=120, deadline=None)
    def test_exact_finder_rows_match_edges(self, edges):
        rows = _rows_of(edges)
        per_edge = CountingExactFinder(20)
        canonical = sorted(set(edges))
        for edge in canonical:
            per_edge.process(edge)
        batched = CountingExactFinder(20)
        for v, partners in canonical_row_batches(rows):
            batched.process_row(v, partners)
        assert batched.result() == per_edge.result()
        assert batched.state_bits() == per_edge.state_bits()
        assert batched.export_state() == per_edge.export_state()

    @given(EDGE_STREAMS, st.integers(min_value=0, max_value=2 ** 20))
    @settings(max_examples=120, deadline=None)
    def test_reservoir_finder_rows_match_edges(self, edges, seed):
        rows = _rows_of(edges)
        canonical = sorted(set(edges))
        per_edge = ReservoirTriangleFinder(20, reservoir_size=4, seed=seed)
        for edge in canonical:
            per_edge.process(edge)
        batched = ReservoirTriangleFinder(20, reservoir_size=4, seed=seed)
        for v, partners in canonical_row_batches(rows):
            batched.process_row(v, partners)
        # Identical RNG draw sequence => identical reservoir and result.
        assert batched.export_state() == per_edge.export_state()
        assert batched.result() == per_edge.result()
        assert batched.state_bits() == per_edge.state_bits()

    @given(EDGE_STREAMS)
    @settings(max_examples=60, deadline=None)
    def test_run_stream_rows_matches_run_stream(self, edges):
        rows = _rows_of(edges)
        canonical = sorted(set(edges))
        edge_run = run_stream(CountingExactFinder(20), canonical)
        row_run = run_stream_rows(CountingExactFinder(20), rows)
        assert row_run == edge_run

    def test_default_process_row_falls_back_to_process(self):
        class Recorder(CountingExactFinder):
            def __init__(self):
                super().__init__(10)
                self.calls = []

            def process(self, edge):
                self.calls.append(edge)
                super().process(edge)

        recorder = Recorder()
        # Use the ABC's fallback explicitly (bypassing the native form).
        from repro.streaming.stream import StreamingAlgorithm

        StreamingAlgorithm.process_row(recorder, 2, (1 << 5) | (1 << 7))
        assert recorder.calls == [(2, 5), (2, 7)]

    def test_canonical_row_batches_cover_each_edge_once(self):
        graph = gnd(40, 4.0, seed=3)
        batches = list(canonical_row_batches(graph.adjacency_rows()))
        edges = [
            (v, u)
            for v, mask in batches
            for u in range(40)
            if mask >> u & 1
        ]
        assert edges == sorted(graph.edges())
        assert all(u > v for v, mask in batches for u in (
            (mask & -mask).bit_length() - 1,
        ))


class TestReduction:
    def test_chain_matches_streaming_result_shape(self):
        instance = far_instance(150, 5.0, 0.3, seed=8)
        partition = partition_disjoint(instance.graph, 3, seed=9)
        run = streaming_to_oneway(
            partition, lambda: CountingExactFinder(150)
        )
        assert run.output is not None  # exact finder always succeeds

    def test_chain_cost_is_state_sizes(self):
        instance = far_instance(150, 5.0, 0.3, seed=10)
        partition = partition_disjoint(instance.graph, 3, seed=11)
        cost = oneway_cost_of_streaming(
            partition, lambda: CountingExactFinder(150)
        )
        # Two hops, each forwarding <= |E| edges worth of state.
        assert cost <= 2 * instance.graph.num_edges * edge_bits(150)
        assert cost > 0

    def test_reservoir_chain_bounded_cost(self):
        instance = far_instance(150, 5.0, 0.3, seed=12)
        partition = partition_disjoint(instance.graph, 3, seed=13)
        reservoir = 16
        cost = oneway_cost_of_streaming(
            partition,
            lambda: ReservoirTriangleFinder(150, reservoir, seed=14),
        )
        assert cost <= 2 * (reservoir + 1) * edge_bits(150)

    def test_single_player_rejected(self):
        graph = Graph(5, [(0, 1)])
        from repro.graphs.partition import EdgePartition

        partition = EdgePartition(graph, (frozenset({(0, 1)}),))
        with pytest.raises(ValueError):
            streaming_to_oneway(partition, lambda: CountingExactFinder(5))

    def test_space_transfer_formula(self):
        assert space_lower_bound_from_oneway(1000.0, hops=2) == 500.0
        with pytest.raises(ValueError):
            space_lower_bound_from_oneway(10.0, hops=0)

    def test_space_transfer_validates_inputs(self):
        with pytest.raises(ValueError, match="hops"):
            space_lower_bound_from_oneway(10.0, hops=-3)
        with pytest.raises(ValueError, match="negative"):
            space_lower_bound_from_oneway(-1.0, hops=2)
        assert space_lower_bound_from_oneway(0.0, hops=5) == 0.0

    @pytest.mark.parametrize("factory", [
        lambda: CountingExactFinder(150),
        lambda: ReservoirTriangleFinder(150, 16, seed=14),
    ])
    def test_row_batched_matches_per_edge_chain(self, factory):
        """The mask chain is pinned to the per-edge predecessor."""
        instance = far_instance(150, 5.0, 0.3, seed=21)
        partition = partition_disjoint(instance.graph, 3, seed=22)
        rows = streaming_to_oneway(partition, factory, row_batched=True)
        edges = streaming_to_oneway(partition, factory, row_batched=False)
        assert rows.output == edges.output
        assert rows.total_bits == edges.total_bits
        assert rows.transcript.messages == edges.transcript.messages

    def test_chain_cost_equals_sum_of_per_hop_state_bits(self):
        """Charged-bits accounting: CC = Σ max(1, state_bits) per hop."""
        instance = far_instance(150, 5.0, 0.3, seed=23)
        partition = partition_disjoint(instance.graph, 4, seed=24)
        run = streaming_to_oneway(partition, lambda: CountingExactFinder(150))
        per_hop = [bits for _, _, bits in run.transcript.messages]
        assert len(per_hop) == 3  # k - 1 forwarding hops
        assert run.total_bits == sum(per_hop)
        for (_, state, bits) in run.transcript.messages:
            assert bits == max(1, state["bits"])
            forwarded_edges = sum(
                row.bit_count() for row in state["state"]["rows"].values()
            )
            assert state["bits"] == forwarded_edges * edge_bits(150)
        assert oneway_cost_of_streaming(
            partition, lambda: CountingExactFinder(150)
        ) == run.total_bits

    def test_chain_cost_floor_on_empty_views(self):
        """Empty segments still charge the 1-bit floor per hop."""
        graph = Graph(6, [(0, 1)])
        from repro.graphs.partition import EdgePartition

        partition = EdgePartition(
            graph, (frozenset({(0, 1)}), frozenset(), frozenset())
        )
        run = streaming_to_oneway(partition, lambda: CountingExactFinder(6))
        # Hop 1 forwards one edge, hop 2 forwards the same single edge.
        assert [bits for _, _, bits in run.transcript.messages] == [
            edge_bits(6), edge_bits(6)
        ]

"""Tests for Theorem 3.1 / Lemma 3.2 degree approximation."""

import pytest

from repro.comm.coordinator import CoordinatorRuntime
from repro.comm.players import make_players
from repro.comm.randomness import SharedRandomness
from repro.core.degree_approx import (
    DegreeApproxParams,
    approx_average_degree,
    approx_degree,
    approx_degree_no_duplication,
    approx_distinct_edges,
)
from repro.graphs.generators import gnd
from repro.graphs.graph import Graph
from repro.graphs.partition import (
    partition_disjoint,
    partition_with_duplication,
)


def runtime_for(graph, k=3, seed=1, duplication=True):
    partition = (
        partition_with_duplication(graph, k, seed=seed)
        if duplication
        else partition_disjoint(graph, k, seed=seed)
    )
    return CoordinatorRuntime(
        make_players(partition), SharedRandomness(seed + 100)
    )


STRONG = DegreeApproxParams(alpha=2.0, tau=0.02, experiments_override=48)


class TestParams:
    def test_alpha_must_exceed_one(self):
        with pytest.raises(ValueError):
            DegreeApproxParams(alpha=1.0)

    def test_tau_range(self):
        with pytest.raises(ValueError):
            DegreeApproxParams(tau=0.0)
        with pytest.raises(ValueError):
            DegreeApproxParams(tau=1.0)

    def test_threshold_c_above_one(self):
        with pytest.raises(ValueError):
            DegreeApproxParams(threshold_c=1.0)

    def test_experiments_default_scales_with_tau(self):
        few = DegreeApproxParams(tau=0.2).experiments_per_round(4)
        many = DegreeApproxParams(tau=0.01).experiments_per_round(4)
        assert many > few

    def test_experiments_override_wins(self):
        params = DegreeApproxParams(experiments_override=7)
        assert params.experiments_per_round(1000) == 7


class TestApproxDegree:
    def test_zero_degree(self):
        graph = Graph(10, [(0, 1)])
        rt = runtime_for(graph)
        estimate = approx_degree(rt, 5, STRONG)
        assert estimate.value == 0

    @pytest.mark.parametrize("true_degree", [4, 16, 50])
    def test_within_factor(self, true_degree):
        graph = Graph(
            true_degree + 1, [(0, i) for i in range(1, true_degree + 1)]
        )
        hits = 0
        for seed in range(8):
            rt = runtime_for(graph, seed=seed)
            estimate = approx_degree(rt, 0, STRONG, tag=seed)
            ratio = estimate.value / true_degree
            if 1 / (2 * STRONG.alpha) <= ratio <= 2 * STRONG.alpha:
                hits += 1
        assert hits >= 6, f"approximation failed too often ({hits}/8)"

    def test_msb_bracket_valid(self):
        graph = Graph(30, [(0, i) for i in range(1, 21)])
        rt = runtime_for(graph, k=4)
        estimate = approx_degree(rt, 0, STRONG)
        # d'/(2k) <= d(v) <= d' must hold by construction.
        assert estimate.msb_bracket >= 20
        assert estimate.msb_bracket <= 2 * 4 * 20 * 2

    def test_duplication_does_not_overcount_wildly(self):
        # Every player sees every edge: naive summing would give k*d.
        from repro.graphs.partition import partition_all_to_all

        graph = Graph(40, [(0, i) for i in range(1, 33)])
        partition = partition_all_to_all(graph, 5)
        hits = 0
        for seed in range(6):
            rt = CoordinatorRuntime(
                make_players(partition), SharedRandomness(seed)
            )
            estimate = approx_degree(rt, 0, STRONG, tag=seed)
            if estimate.value <= 2 * STRONG.alpha * 32:
                hits += 1
        assert hits >= 5

    def test_cost_scales_sublinearly_in_degree(self):
        small = Graph(10, [(0, i) for i in range(1, 9)])
        big = Graph(600, [(0, i) for i in range(1, 513)])
        rt_small = runtime_for(small)
        approx_degree(rt_small, 0, STRONG)
        rt_big = runtime_for(big)
        approx_degree(rt_big, 0, STRONG)
        # Degree grew 64x; cost must stay within a small constant factor
        # (O(log log d) + rounds growth only).
        assert rt_big.ledger.total_bits <= 4 * rt_small.ledger.total_bits


class TestNoDuplication:
    def test_exact_when_alpha_large_bits(self):
        graph = Graph(20, [(0, i) for i in range(1, 17)])
        rt = runtime_for(graph, duplication=False)
        estimate = approx_degree_no_duplication(rt, 0, alpha=1.1)
        assert 16 / 1.2 <= estimate <= 16

    def test_undercounts_only(self):
        graph = Graph(50, [(0, i) for i in range(1, 40)])
        for alpha in (1.5, 2.0, 3.0):
            rt = runtime_for(graph, duplication=False, seed=7)
            estimate = approx_degree_no_duplication(rt, 0, alpha=alpha)
            assert estimate <= 39
            assert estimate >= 39 / (2 * alpha)

    def test_zero_degree(self):
        graph = Graph(5, [(0, 1)])
        rt = runtime_for(graph, duplication=False)
        assert approx_degree_no_duplication(rt, 4) == 0

    def test_invalid_alpha_rejected(self):
        graph = Graph(5, [(0, 1)])
        rt = runtime_for(graph, duplication=False)
        with pytest.raises(ValueError):
            approx_degree_no_duplication(rt, 0, alpha=1.0)


class TestDistinctEdges:
    def test_estimates_edge_count(self):
        graph = gnd(200, 8.0, seed=3)
        true_edges = graph.num_edges
        hits = 0
        for seed in range(6):
            rt = runtime_for(graph, seed=seed)
            estimate = approx_distinct_edges(rt, STRONG, tag=seed)
            if true_edges / (2 * STRONG.alpha) <= estimate.value <= (
                2 * STRONG.alpha * true_edges
            ):
                hits += 1
        assert hits >= 4

    def test_average_degree_wrapper(self):
        graph = gnd(200, 8.0, seed=3)
        rt = runtime_for(graph, seed=11)
        estimate = approx_average_degree(rt, STRONG, tag=11)
        true = graph.average_degree()
        assert true / 6 <= estimate <= 6 * true

    def test_empty_graph(self):
        graph = Graph(10)
        from repro.graphs.partition import EdgePartition

        partition = EdgePartition(graph, (frozenset(), frozenset()))
        rt = CoordinatorRuntime(make_players(partition), SharedRandomness(0))
        assert approx_distinct_edges(rt, STRONG).value == 0

"""Property-based tests (hypothesis) for core data structures & invariants."""


from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.comm.encoding import (
    bits_for_universe,
    edge_bits,
    elias_gamma_bits,
    vertex_bits,
)
from repro.comm.players import Player
from repro.comm.randomness import SharedRandomness
from repro.graphs.buckets import bucket_bounds, bucket_index
from repro.graphs.graph import Graph
from repro.graphs.partition import partition_disjoint
from repro.graphs.triangles import (
    count_triangles,
    find_triangle,
    greedy_triangle_packing,
    is_triangle_free,
    make_triangle_free_by_removal,
    packing_distance_lower_bound,
)
from repro.lowerbounds.boolean_matching import (
    BMInstance,
    bm_product,
    reduction_graph,
)
from repro.lowerbounds.information import bernoulli_kl, lemma_4_3_lower_bound


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def graphs(draw, max_n: int = 12):
    n = draw(st.integers(min_value=2, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=len(possible))
    )
    return Graph(n, edges)


@st.composite
def bm_instances(draw, max_n: int = 4):
    n = draw(st.integers(min_value=1, max_value=max_n))
    x = tuple(draw(st.integers(0, 1)) for _ in range(2 * n))
    indices = draw(st.permutations(range(2 * n)))
    matching = tuple(
        (min(indices[2 * i], indices[2 * i + 1]),
         max(indices[2 * i], indices[2 * i + 1]))
        for i in range(n)
    )
    w = tuple(draw(st.integers(0, 1)) for _ in range(n))
    return BMInstance(x=x, matching=matching, w=w)


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
class TestEncodingProperties:
    @given(st.integers(min_value=1, max_value=10 ** 9))
    def test_universe_bits_sufficient(self, size):
        assert 2 ** bits_for_universe(size) >= size

    @given(st.integers(min_value=2, max_value=10 ** 6))
    def test_edge_is_twice_vertex(self, n):
        assert edge_bits(n) == 2 * vertex_bits(n)

    @given(st.integers(min_value=1, max_value=10 ** 9))
    def test_elias_gamma_self_delimiting_length(self, value):
        assert elias_gamma_bits(value) == 2 * value.bit_length() - 1


# ----------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------
class TestGraphProperties:
    @given(graphs())
    def test_handshake_lemma(self, graph):
        assert sum(graph.degrees()) == 2 * graph.num_edges

    @given(graphs())
    def test_edges_canonical(self, graph):
        for u, v in graph.edges():
            assert u < v
            assert graph.has_edge(v, u)

    @given(graphs())
    def test_copy_equals_original(self, graph):
        assert graph.copy() == graph

    @given(graphs(), st.integers(min_value=0, max_value=11))
    def test_neighbors_symmetric(self, graph, v):
        assume(v < graph.n)
        for u in graph.neighbors(v):
            assert v in graph.neighbors(u)

    @given(graphs())
    def test_average_degree_formula(self, graph):
        assert graph.average_degree() == 2 * graph.num_edges / graph.n


# ----------------------------------------------------------------------
# Triangles and farness
# ----------------------------------------------------------------------
class TestTriangleProperties:
    @given(graphs())
    def test_find_consistent_with_count(self, graph):
        assert (find_triangle(graph) is None) == (
            count_triangles(graph) == 0
        )

    @given(graphs())
    def test_found_triangle_is_real(self, graph):
        triangle = find_triangle(graph)
        if triangle is not None:
            a, b, c = triangle
            assert graph.has_edge(a, b)
            assert graph.has_edge(a, c)
            assert graph.has_edge(b, c)

    @given(graphs())
    def test_packing_at_most_triangle_count(self, graph):
        assert len(greedy_triangle_packing(graph)) <= count_triangles(graph)

    @given(graphs())
    def test_packing_lower_bounds_removal(self, graph):
        lower = packing_distance_lower_bound(graph)
        _, upper = make_triangle_free_by_removal(graph)
        assert lower <= upper

    @given(graphs())
    def test_removal_produces_free_graph(self, graph):
        free, _ = make_triangle_free_by_removal(graph)
        assert is_triangle_free(free)

    @given(graphs())
    def test_removal_upper_at_most_3x_packing(self, graph):
        # Maximality: each removed edge kills >= 1 packed triangle's worth;
        # greedy packing is a 3-approx, so upper <= 3 * |max packing| and
        # |max packing| <= 3 * greedy.  The crude safe bound: upper bounded
        # by triangle-edge count.
        _, upper = make_triangle_free_by_removal(graph)
        from repro.graphs.triangles import triangle_edges

        assert upper <= len(triangle_edges(graph))


# ----------------------------------------------------------------------
# Buckets
# ----------------------------------------------------------------------
class TestBucketProperties:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    def test_bucket_bounds_contain_degree(self, degree):
        index = bucket_index(degree)
        low, high = bucket_bounds(index)
        if degree == 0:
            assert index == 0
        else:
            assert low <= degree < high

    @given(st.integers(min_value=1, max_value=10 ** 6))
    def test_bucket_index_monotone(self, degree):
        assert bucket_index(degree) <= bucket_index(degree + 1)


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
class TestPartitionProperties:
    @given(graphs(), st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=100))
    def test_disjoint_partition_covers_exactly(self, graph, k, seed):
        partition = partition_disjoint(graph, k, seed=seed)
        union = set()
        total = 0
        for view in partition.views:
            union.update(view)
            total += len(view)
        assert union == graph.edge_set()
        assert total == graph.num_edges

    @given(graphs(), st.integers(min_value=1, max_value=4))
    def test_player_views_are_subsets(self, graph, k):
        partition = partition_disjoint(graph, k, seed=0)
        players = [
            Player(j, graph.n, view)
            for j, view in enumerate(partition.views)
        ]
        for player in players:
            for u, v in player.edges:
                assert graph.has_edge(u, v)


# ----------------------------------------------------------------------
# Shared randomness
# ----------------------------------------------------------------------
class TestRandomnessProperties:
    @given(st.integers(min_value=0, max_value=2 ** 31),
           st.integers(min_value=1, max_value=50))
    def test_permutation_rank_total_order(self, seed, universe):
        rank = SharedRandomness(seed).permutation_rank(universe)
        values = [rank(i) for i in range(universe)]
        assert len(set(values)) == universe

    @given(st.integers(min_value=0, max_value=2 ** 31),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25)
    def test_bernoulli_predicate_deterministic(self, seed, p):
        pred_a = SharedRandomness(seed).bernoulli_predicate(p, tag=1)
        pred_b = SharedRandomness(seed).bernoulli_predicate(p, tag=1)
        assert [pred_a(i) for i in range(50)] == [
            pred_b(i) for i in range(50)
        ]


# ----------------------------------------------------------------------
# Information theory
# ----------------------------------------------------------------------
class TestInformationProperties:
    @given(
        st.floats(min_value=0.001, max_value=0.999),
        st.floats(min_value=0.001, max_value=0.499),
    )
    def test_lemma_4_3_universal(self, q, p):
        assert bernoulli_kl(q, p) >= lemma_4_3_lower_bound(q, p) - 1e-9

    @given(
        st.floats(min_value=0.001, max_value=0.999),
        st.floats(min_value=0.001, max_value=0.999),
    )
    def test_kl_non_negative(self, q, p):
        assert bernoulli_kl(q, p) >= -1e-12

    @given(st.floats(min_value=0.001, max_value=0.999))
    def test_kl_zero_iff_equal(self, p):
        assert bernoulli_kl(p, p) == 0.0


# ----------------------------------------------------------------------
# Boolean matching reduction
# ----------------------------------------------------------------------
class TestBMProperties:
    @given(bm_instances())
    @settings(max_examples=40)
    def test_triangle_count_equals_zero_positions(self, instance):
        graph, _, _ = reduction_graph(instance)
        zeros = sum(1 for bit in bm_product(instance) if bit == 0)
        assert count_triangles(graph) == zeros

    @given(bm_instances())
    @settings(max_examples=40)
    def test_packing_equals_zero_positions(self, instance):
        # Gadget triangles are edge-disjoint across gadgets.
        graph, _, _ = reduction_graph(instance)
        zeros = sum(1 for bit in bm_product(instance) if bit == 0)
        assert len(greedy_triangle_packing(graph)) == zeros

    @given(bm_instances())
    @settings(max_examples=40)
    def test_alice_bob_cover(self, instance):
        graph, alice, bob = reduction_graph(instance)
        assert alice | bob == graph.edge_set()

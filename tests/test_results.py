"""Tests for the DetectionResult contract (repro.core.results)."""

import pytest

from repro.comm.ledger import CommunicationLedger
from repro.core.results import DetectionResult


def summary(bits: int = 10):
    ledger = CommunicationLedger()
    ledger.charge_upstream(0, bits)
    return ledger.summary()


class TestDetectionResult:
    def test_found_requires_triangle(self):
        with pytest.raises(ValueError):
            DetectionResult(found=True, triangle=None, cost=summary())

    def test_not_found_forbids_triangle(self):
        with pytest.raises(ValueError):
            DetectionResult(found=False, triangle=(0, 1, 2), cost=summary())

    def test_total_bits_passthrough(self):
        result = DetectionResult(
            found=True, triangle=(0, 1, 2), cost=summary(42)
        )
        assert result.total_bits == 42

    def test_verdict_semantics(self):
        found = DetectionResult(
            found=True, triangle=(0, 1, 2), cost=summary()
        )
        missed = DetectionResult(found=False, triangle=None, cost=summary())
        assert not found.verdict_triangle_free()
        assert missed.verdict_triangle_free()

    def test_witness_edges_default_empty(self):
        result = DetectionResult(found=False, triangle=None, cost=summary())
        assert result.witness_edges == ()

    def test_details_default_dict(self):
        result = DetectionResult(found=False, triangle=None, cost=summary())
        assert result.details == {}

"""Unit tests for workload generators (repro.graphs.generators)."""

import logging
import math

import pytest

from repro.graphs.generators import (
    bipartite_triangle_free,
    embed_in_larger_graph,
    far_instance,
    gnd,
    gnp,
    mu_parts,
    planted_disjoint_triangles,
    skewed_hub_graph,
    triangle_free_degree_spread,
    tripartite_mu,
)
from repro.graphs.triangles import (
    count_triangles,
    is_triangle_free,
    packing_distance_lower_bound,
)


class TestGnp:
    def test_p_zero_empty(self):
        assert gnp(50, 0.0, seed=1).num_edges == 0

    def test_p_one_complete(self):
        graph = gnp(10, 1.0, seed=1)
        assert graph.num_edges == 45

    def test_expected_edges(self):
        graph = gnp(200, 0.1, seed=2)
        expected = 0.1 * 200 * 199 / 2
        assert 0.7 * expected <= graph.num_edges <= 1.3 * expected

    def test_deterministic(self):
        assert gnp(50, 0.2, seed=3).edge_set() == gnp(50, 0.2, seed=3).edge_set()

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            gnp(10, 1.5)

    def test_tiny_graph(self):
        assert gnp(1, 0.5).num_edges == 0


class TestGnd:
    def test_average_degree_close(self):
        graph = gnd(1000, 8.0, seed=4)
        assert 6.0 <= graph.average_degree() <= 10.0

    def test_degree_above_n_clamped(self):
        graph = gnd(5, 100.0, seed=4)
        assert graph.num_edges == 10  # complete


class TestPlantedTriangles:
    def test_planted_count(self):
        instance = planted_disjoint_triangles(30, 5, seed=1)
        assert len(instance.planted_triangles) == 5
        assert count_triangles(instance.graph) >= 5

    def test_planted_vertex_disjoint(self):
        instance = planted_disjoint_triangles(60, 10, seed=2)
        seen: set[int] = set()
        for triangle in instance.planted_triangles:
            for v in triangle:
                assert v not in seen
                seen.add(v)

    def test_certified_epsilon(self):
        instance = planted_disjoint_triangles(30, 5, seed=3)
        assert instance.epsilon_certified == pytest.approx(5 / 15)
        assert packing_distance_lower_bound(instance.graph) >= 5

    def test_too_many_triangles_rejected(self):
        with pytest.raises(ValueError):
            planted_disjoint_triangles(10, 4)

    def test_background_increases_density(self):
        sparse = planted_disjoint_triangles(90, 5, seed=4)
        dense = planted_disjoint_triangles(
            90, 5, seed=4, background_degree=4.0
        )
        assert dense.graph.num_edges > sparse.graph.num_edges


class TestFarInstance:
    def test_density_targeted(self):
        instance = far_instance(600, 6.0, 0.2, seed=5)
        assert 4.0 <= instance.graph.average_degree() <= 8.0

    def test_farness_certified(self):
        instance = far_instance(600, 6.0, 0.2, seed=5)
        assert instance.epsilon_certified >= 0.1

    def test_packing_confirms_certificate(self):
        instance = far_instance(300, 4.0, 0.3, seed=6)
        packing = packing_distance_lower_bound(instance.graph)
        required = instance.epsilon_certified * instance.graph.num_edges
        assert packing >= required * 0.99

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            far_instance(100, 4.0, 0.0)
        with pytest.raises(ValueError):
            far_instance(100, 4.0, 1.5)

    def test_epsilon_shortfall_warns(self, caplog):
        """The n//3 vertex-disjointness cap can pull the certified
        epsilon far below the request; that must not be silent."""
        with caplog.at_level(logging.WARNING, "repro.graphs.generators"):
            instance = far_instance(90, 12.0, 0.5, seed=3)
        assert any("certifies only" in r.message for r in caplog.records)
        assert instance.epsilon_certified < 0.45

    def test_epsilon_shortfall_raises_under_strict(self):
        with pytest.raises(ValueError, match="certifies only"):
            far_instance(90, 12.0, 0.5, seed=3, strict=True)

    def test_no_warning_when_request_met(self, caplog):
        # eps*d/2 <= 1/3, so the n//3 triangle cap does not bind.
        with caplog.at_level(logging.WARNING, "repro.graphs.generators"):
            instance = far_instance(600, 3.0, 0.2, seed=5)
        assert not caplog.records
        assert instance.epsilon_certified >= 0.18


class TestSkewedHubs:
    def test_triangles_at_hubs(self):
        graph = skewed_hub_graph(200, num_hubs=2, vees_per_hub=10, seed=7)
        assert count_triangles(graph) == 20

    def test_hub_degree_dominates(self):
        graph = skewed_hub_graph(200, num_hubs=1, vees_per_hub=20, seed=8)
        degrees = sorted(graph.degrees(), reverse=True)
        assert degrees[0] == 40  # the hub
        assert degrees[1] <= 2  # spokes

    def test_too_small_n_rejected(self):
        with pytest.raises(ValueError):
            skewed_hub_graph(10, num_hubs=2, vees_per_hub=10)

    def test_zero_hubs_rejected(self):
        with pytest.raises(ValueError):
            skewed_hub_graph(100, num_hubs=0, vees_per_hub=5)


class TestTripartiteMu:
    def test_parts_layout(self):
        parts = mu_parts(10)
        assert parts.n == 30
        assert list(parts.u_part) == list(range(10))
        assert list(parts.v2_part) == list(range(20, 30))

    def test_edges_cross_part_only(self):
        graph, parts = tripartite_mu(15, gamma=1.5, seed=9)
        part_of = {}
        for index, part in enumerate(
            (parts.u_part, parts.v1_part, parts.v2_part)
        ):
            for v in part:
                part_of[v] = index
        for u, v in graph.edges():
            assert part_of[u] != part_of[v]

    def test_edge_count_near_expectation(self):
        part_size = 40
        graph, _ = tripartite_mu(part_size, gamma=1.0, seed=10)
        n = 3 * part_size
        expected = 3 * part_size * part_size / math.sqrt(n)
        assert 0.5 * expected <= graph.num_edges <= 1.6 * expected

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ValueError):
            tripartite_mu(10, gamma=0.0)


class TestTriangleFreeControls:
    def test_bipartite_is_free(self):
        graph = bipartite_triangle_free(200, 5.0, seed=11)
        assert is_triangle_free(graph)

    def test_bipartite_density(self):
        graph = bipartite_triangle_free(400, 6.0, seed=12)
        assert 4.0 <= graph.average_degree() <= 8.0

    def test_spread_is_free(self):
        graph = triangle_free_degree_spread(500, 6.0, 100, seed=13)
        assert is_triangle_free(graph)

    def test_spread_reaches_max_degree(self):
        graph = triangle_free_degree_spread(2000, 8.0, 200, seed=14)
        assert max(graph.degrees()) >= 150

    def test_spread_covers_buckets(self):
        graph = triangle_free_degree_spread(2000, 8.0, 100, seed=15)
        degrees = set(graph.degrees())
        # Should contain low, medium and high degree vertices.
        assert any(d <= 3 for d in degrees)
        assert any(10 <= d <= 50 for d in degrees)
        assert any(d >= 80 for d in degrees)


class TestEmbedding:
    def test_preserves_triangle_count(self):
        core = planted_disjoint_triangles(30, 5, seed=16).graph
        padded = embed_in_larger_graph(core, 300, seed=17)
        assert count_triangles(padded) == count_triangles(core)

    def test_preserves_edge_count(self):
        core = gnd(50, 6.0, seed=18)
        padded = embed_in_larger_graph(core, 500, seed=19)
        assert padded.num_edges == core.num_edges

    def test_lowers_average_degree(self):
        core = gnd(50, 6.0, seed=18)
        padded = embed_in_larger_graph(core, 500, seed=19)
        assert padded.average_degree() == pytest.approx(
            core.average_degree() / 10
        )

    def test_target_too_small_rejected(self):
        core = gnd(50, 4.0, seed=20)
        with pytest.raises(ValueError):
            embed_in_larger_graph(core, 49)


class TestPlantedTrianglesAtDegree:
    def test_triangle_vertices_have_target_degree(self):
        from repro.graphs.generators import planted_triangles_at_degree
        from repro.graphs.triangles import iter_triangles

        graph = planted_triangles_at_degree(500, 8, 10, seed=21)
        for triangle in iter_triangles(graph):
            for v in triangle:
                assert graph.degree(v) == 10

    def test_triangle_count(self):
        from repro.graphs.generators import planted_triangles_at_degree
        from repro.graphs.triangles import count_triangles

        graph = planted_triangles_at_degree(500, 8, 10, seed=22)
        assert count_triangles(graph) == 8

    def test_leaves_have_degree_one(self):
        from repro.graphs.generators import planted_triangles_at_degree

        graph = planted_triangles_at_degree(500, 5, 12, seed=23)
        degrees = sorted(set(graph.degrees()))
        assert degrees == [0, 1, 12]

    def test_pins_min_full_bucket(self):
        from repro.graphs.buckets import bucket_index, min_full_bucket
        from repro.graphs.generators import planted_triangles_at_degree

        graph = planted_triangles_at_degree(800, 10, 20, seed=24)
        epsilon = 10 / graph.num_edges
        assert min_full_bucket(graph, epsilon) == bucket_index(20)

    def test_validation(self):
        from repro.graphs.generators import planted_triangles_at_degree

        with pytest.raises(ValueError):
            planted_triangles_at_degree(10, 5, 1)
        with pytest.raises(ValueError):
            planted_triangles_at_degree(10, 100, 5)


class TestDisjointCliques:
    def test_uniform_degree(self):
        from repro.graphs.generators import disjoint_cliques

        graph = disjoint_cliques(200, 9, 4, seed=25)
        non_isolated = [d for d in graph.degrees() if d > 0]
        assert set(non_isolated) == {8}
        assert len(non_isolated) == 36

    def test_edge_count(self):
        from repro.graphs.generators import disjoint_cliques

        graph = disjoint_cliques(200, 7, 5, seed=26)
        assert graph.num_edges == 5 * 21

    def test_all_clique_vertices_full(self):
        from repro.graphs.buckets import is_full_vertex
        from repro.graphs.generators import disjoint_cliques

        graph = disjoint_cliques(100, 9, 2, seed=27)
        for v in range(100):
            if graph.degree(v) > 0:
                assert is_full_vertex(graph, v, epsilon=0.3)

    def test_validation(self):
        from repro.graphs.generators import disjoint_cliques

        with pytest.raises(ValueError):
            disjoint_cliques(10, 2, 1)
        with pytest.raises(ValueError):
            disjoint_cliques(10, 6, 3)

"""RunJournal durability contract: append, checksum, recover, resume."""

import json
import pickle

import pytest

from repro.runtime.journal import JournalError, RunJournal, spec_key
from repro.runtime.spec import TrialResult, TrialSpec


def make_spec(point=0, trial=0, seed=101):
    return TrialSpec(point_index=point, trial_index=trial,
                     n=100, d=4.0, k=3, seed=seed)


def make_result(spec, bits=12.5, found=True, extras=None):
    return TrialResult.from_outcome(spec, bits=bits, found=found,
                                    extras=extras)


class TestSpecKey:
    def test_deterministic(self):
        assert spec_key(make_spec()) == spec_key(make_spec())

    def test_every_coordinate_participates(self):
        base = make_spec()
        variants = [
            make_spec(point=1),
            make_spec(trial=1),
            make_spec(seed=102),
            TrialSpec(point_index=0, trial_index=0, n=101, d=4.0, k=3,
                      seed=101),
            TrialSpec(point_index=0, trial_index=0, n=100, d=4.5, k=3,
                      seed=101),
            TrialSpec(point_index=0, trial_index=0, n=100, d=4.0, k=4,
                      seed=101),
            TrialSpec(point_index=0, trial_index=0, n=100, d=4.0, k=3,
                      seed=101, instance_seed=7),
        ]
        keys = {spec_key(v) for v in variants}
        assert spec_key(base) not in keys
        assert len(keys) == len(variants)


class TestRoundTrip:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "j.jsonl"
        spec = make_spec()
        result = make_result(spec, extras={"rounds": 3, "p": 0.25})
        with RunJournal(path) as journal:
            journal.record(spec, result)
            assert journal.get(spec) == result
            assert spec in journal
            assert len(journal) == 1
        reloaded = RunJournal(path)
        assert reloaded.get(spec) == result
        assert list(reloaded.results()) == [result]
        reloaded.close()

    def test_reload_is_byte_identical(self, tmp_path):
        # The resume contract's foundation: a journaled result pickles
        # to the same bytes as the live one.
        path = tmp_path / "j.jsonl"
        spec = make_spec()
        result = make_result(spec)
        with RunJournal(path) as journal:
            journal.record(spec, result)
        reloaded = RunJournal(path)
        assert pickle.dumps(reloaded.get(spec)) == pickle.dumps(result)
        reloaded.close()

    def test_record_is_idempotent(self, tmp_path):
        path = tmp_path / "j.jsonl"
        spec = make_spec()
        result = make_result(spec)
        with RunJournal(path) as journal:
            journal.record(spec, result)
            journal.record(spec, result)
            assert len(journal) == 1
        assert len(path.read_text().splitlines()) == 2  # header + 1 record

    def test_non_ok_results_not_journaled(self, tmp_path):
        path = tmp_path / "j.jsonl"
        spec = make_spec()
        with RunJournal(path) as journal:
            journal.record(spec, TrialResult.from_error(spec, "boom"))
            assert len(journal) == 0
            assert journal.get(spec) is None

    def test_json_unfaithful_result_rejected_loudly(self, tmp_path):
        path = tmp_path / "j.jsonl"
        spec = make_spec()
        bad = make_result(spec, extras={"witness": (1, 2, 3)})  # tuple
        with RunJournal(path) as journal:
            with pytest.raises(JournalError, match="JSON round trip"):
                journal.record(spec, bad)
            assert len(journal) == 0


class TestRecovery:
    def fill(self, path, count=3):
        specs = [make_spec(trial=t, seed=101 + t) for t in range(count)]
        with RunJournal(path) as journal:
            for spec in specs:
                journal.record(spec, make_result(spec, bits=float(spec.seed)))
        return specs

    def test_torn_tail_truncated(self, tmp_path, caplog):
        path = tmp_path / "j.jsonl"
        specs = self.fill(path, count=3)
        intact = path.read_bytes()
        # Crash mid-append: the final record is cut in half.
        lines = intact.splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        with caplog.at_level("WARNING"):
            journal = RunJournal(path)
        assert len(journal) == 2
        assert journal.get(specs[0]) is not None
        assert journal.get(specs[2]) is None
        assert any("truncating" in r.message for r in caplog.records)
        # The damaged tail is gone from disk and appends work again.
        journal.record(specs[2], make_result(specs[2], bits=103.0))
        journal.close()
        reloaded = RunJournal(path)
        assert len(reloaded) == 3
        reloaded.close()

    def test_corrupt_checksum_truncates_from_there(self, tmp_path, caplog):
        path = tmp_path / "j.jsonl"
        specs = self.fill(path, count=3)
        lines = path.read_text().splitlines()
        entry = json.loads(lines[2])  # first record after the header
        entry["result"]["bits"] = 999.0  # payload no longer matches checksum
        lines[2] = json.dumps(entry, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with caplog.at_level("WARNING"):
            journal = RunJournal(path)
        # Everything from the tampered record on is distrusted.
        assert len(journal) == 1
        assert journal.get(specs[0]) is not None
        assert journal.get(specs[1]) is None
        journal.close()

    def test_unterminated_valid_final_line_is_torn(self, tmp_path):
        # A final line missing its newline would be corrupted by the
        # next append (concatenation) even if it parses — treat as torn.
        path = tmp_path / "j.jsonl"
        specs = self.fill(path, count=2)
        raw = path.read_bytes()
        assert raw.endswith(b"\n")
        path.write_bytes(raw[:-1])
        journal = RunJournal(path)
        assert len(journal) == 1
        assert journal.get(specs[1]) is None
        journal.close()

    def test_empty_file_usable(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.touch()
        with RunJournal(path) as journal:
            assert len(journal) == 0
            journal.record(make_spec(), make_result(make_spec()))
        reloaded = RunJournal(path)
        assert len(reloaded) == 1
        reloaded.close()

    def test_directory_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record(make_spec(), make_result(make_spec()))
        assert path.exists()


class TestLabels:
    def test_label_mismatch_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        RunJournal(path, label="sim-low").close()
        with pytest.raises(JournalError, match="label"):
            RunJournal(path, label="sim-high")

    def test_label_match_accepted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        spec = make_spec()
        with RunJournal(path, label="sim-low") as journal:
            journal.record(spec, make_result(spec))
        reopened = RunJournal(path, label="sim-low")
        assert len(reopened) == 1
        reopened.close()

    def test_unlabelled_open_adopts_existing_label(self, tmp_path):
        path = tmp_path / "j.jsonl"
        RunJournal(path, label="sim-low").close()
        journal = RunJournal(path)
        assert journal.label == "sim-low"
        journal.close()

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"journal": "something-else", "label": null}\n')
        with pytest.raises(JournalError, match="not a"):
            RunJournal(path)


class TestFsyncKnob:
    def test_fsync_off_still_durable_after_close(self, tmp_path):
        path = tmp_path / "j.jsonl"
        spec = make_spec()
        with RunJournal(path, fsync=False) as journal:
            journal.record(spec, make_result(spec))
        reloaded = RunJournal(path)
        assert len(reloaded) == 1
        reloaded.close()

"""Differential tests: mask-native protocol engine vs the set reference.

Three layers, mirroring the PR 2 graph-kernel suite:

* **Players** — hypothesis drives random edge views and random sample
  sets/masks through the mask-native :class:`repro.comm.players.Player`
  and the preserved :class:`repro.comm.reference.SetPlayer`, asserting
  every harvest, degree, and ranked-minimum query agrees.
* **Protocols** — whole runs of sim-low / sim-high / oblivious /
  unrestricted / subgraph detection with both player backends produce
  identical ``DetectionResult``s, including cost summaries, and the
  pinned-seed outputs recorded from the seed commit are reproduced
  bit for bit.
* **Ledger** — the aggregate-counter ledger answers every reporting query
  exactly as a record-retaining twin does, at O(1) per query and with no
  per-message allocation in the default mode.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.table1 import far_disjoint_instance
from repro.comm.ledger import COORDINATOR, CommunicationLedger
from repro.comm.players import Player, make_players
from repro.comm.randomness import SharedRandomness
from repro.comm.reference import SetPlayer, make_set_players
from repro.core.oblivious import ObliviousParams, find_triangle_sim_oblivious
from repro.core.simultaneous_high import SimHighParams, find_triangle_sim_high
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.core.subgraph_detection import (
    FOUR_CYCLE,
    SubgraphParams,
    find_subgraph_simultaneous,
)
from repro.core.unrestricted import UnrestrictedParams, find_triangle_unrestricted
from repro.graphs.generators import gnd
from repro.graphs.graph import mask_of
from repro.graphs.triangles import iter_triangles
from repro.graphs.partition import partition_disjoint, partition_with_duplication

N_SMALL = 24

EDGE_VIEWS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_SMALL - 1),
        st.integers(min_value=0, max_value=N_SMALL - 1),
    ).filter(lambda e: e[0] != e[1]),
    max_size=60,
)
VERTEX_SETS = st.sets(
    st.integers(min_value=0, max_value=N_SMALL - 1), max_size=N_SMALL
)


def build_both(edges) -> tuple[Player, SetPlayer]:
    return Player(0, N_SMALL, edges), SetPlayer(0, N_SMALL, edges)


class TestPlayerDifferential:
    @given(EDGE_VIEWS)
    @settings(max_examples=100, deadline=None)
    def test_introspection_agrees(self, edges):
        mask, ref = build_both(edges)
        assert mask.edges == ref.edges
        assert mask.num_edges == ref.num_edges
        assert mask.sorted_edges() == ref.sorted_edges()
        assert mask.sorted_edges() == sorted(ref.edges)
        assert mask.average_local_degree() == ref.average_local_degree()
        for v in range(N_SMALL):
            assert mask.local_degree(v) == ref.local_degree(v)
            assert mask.local_neighbors(v) == ref.local_neighbors(v)
            assert mask.local_neighbor_mask(v) == ref.local_neighbor_mask(v)
            assert mask.degree_msb_index(v) == ref.degree_msb_index(v)
        for u in range(N_SMALL):
            for v in range(N_SMALL):
                assert mask.has_edge(u, v) == ref.has_edge(u, v)

    @given(EDGE_VIEWS, VERTEX_SETS, VERTEX_SETS)
    @settings(max_examples=150, deadline=None)
    def test_harvests_agree(self, edges, r_sample, s_sample):
        mask, ref = build_both(edges)
        rs_sample = r_sample | s_sample
        r_mask, rs_mask = mask_of(r_sample), mask_of(rs_sample)
        s_mask = mask_of(s_sample)

        assert mask.edges_within(s_sample) == ref.edges_within(s_sample)
        assert mask.edges_within_mask(s_mask) == ref.edges_within_mask(s_mask)
        assert mask.edges_within_mask(s_mask) == sorted(
            ref.edges_within(s_sample)
        )

        assert mask.edges_touching_both(r_sample, rs_sample) == \
            ref.edges_touching_both(r_sample, rs_sample)
        assert mask.edges_touching_both_mask(r_mask, rs_mask) == sorted(
            ref.edges_touching_both(r_sample, rs_sample)
        )
        # The arguments need not be nested: R vs S alone must also agree.
        assert mask.edges_touching_both_mask(r_mask, s_mask) == sorted(
            ref.edges_touching_both(r_sample, s_sample)
        )

        for v in range(N_SMALL):
            assert mask.edges_at_vertex_in_sample(v, s_sample) == \
                ref.edges_at_vertex_in_sample(v, s_sample)
            assert mask.edges_at_vertex_in_mask(v, s_mask) == sorted(
                ref.edges_at_vertex_in_sample(v, s_sample)
            )
            assert mask.sample_hits_vertex(v, s_sample) == \
                ref.sample_hits_vertex(v, s_sample)
            assert mask.sample_hits_vertex_mask(v, s_mask) == \
                ref.sample_hits_vertex(v, s_sample)

    @given(EDGE_VIEWS, st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=100, deadline=None)
    def test_ranked_minima_and_buckets_agree(self, edges, seed):
        mask, ref = build_both(edges)
        rank = SharedRandomness(seed).permutation_rank(N_SMALL)
        for v in range(N_SMALL):
            assert mask.first_incident_edge_under_rank(v, rank) == \
                ref.first_incident_edge_under_rank(v, rank)
        edge_rank = SharedRandomness(seed + 1).permutation_rank(
            N_SMALL * N_SMALL
        )
        assert mask.first_edge_under_rank(
            lambda e: edge_rank(e[0] * N_SMALL + e[1])
        ) == ref.first_edge_under_rank(
            lambda e: edge_rank(e[0] * N_SMALL + e[1])
        )
        for index in range(4):
            for k in (1, 3):
                assert mask.suspected_bucket(index, k) == \
                    ref.suspected_bucket(index, k)

    @given(EDGE_VIEWS)
    @settings(max_examples=40, deadline=None)
    def test_out_of_universe_vertices_agree(self, edges):
        # Negative ids must not wrap around to row n+v; ids >= n must
        # answer "no neighbours", exactly like the dict-backed reference.
        mask, ref = build_both(edges)
        for v in (-1, -N_SMALL, N_SMALL, N_SMALL + 5):
            assert mask.local_degree(v) == ref.local_degree(v) == 0
            assert mask.local_neighbors(v) == ref.local_neighbors(v)
            assert mask.local_neighbor_mask(v) == ref.local_neighbor_mask(v)
            assert mask.degree_msb_index(v) is None
            assert not mask.has_edge(0, v)
            assert not mask.has_edge(v, 0)
            assert not mask.sample_hits_vertex(v, {0, 1})
            assert mask.edges_at_vertex_in_sample(v, {0, 1}) == set()

    @given(EDGE_VIEWS)
    @settings(max_examples=60, deadline=None)
    def test_closing_edges_agree(self, edges):
        mask, ref = build_both(edges)
        vees = [((0, 1), (1, 2)), ((3, 4), (4, 5)), ((0, 2), (2, 5))]
        assert mask.find_closing_edge(vees) == ref.find_closing_edge(vees)
        bag = [(0, 1), (1, 2), (2, 3), (0, 3)]
        assert mask.find_closing_edge_for_pairs(bag) == \
            ref.find_closing_edge_for_pairs(bag)


class TestMakePlayersRowCache:
    def test_rows_cached_on_partition(self):
        graph = gnd(60, 4.0, seed=3)
        partition = partition_with_duplication(graph, 3, seed=4)
        first = partition.adjacency_rows(1)
        again = partition.adjacency_rows(1)
        assert first is again  # memoized, not rebuilt
        players = make_players(partition)
        assert players[1].adjacency_rows() is first

    def test_make_players_matches_views(self):
        graph = gnd(50, 4.0, seed=1)
        partition = partition_with_duplication(graph, 3, seed=2)
        for player, ref, view in zip(
            make_players(partition), make_set_players(partition),
            partition.views,
        ):
            assert player.edges == ref.edges == view


class TestRandomnessMaskForms:
    @given(st.integers(min_value=0, max_value=2 ** 31),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_bernoulli_mask_matches_set_and_stream(self, seed, p):
        a, b = SharedRandomness(seed), SharedRandomness(seed)
        sample = a.bernoulli_subset(100, p, tag=5)
        mask = b.bernoulli_subset_mask(100, p, tag=5)
        assert mask == mask_of(sample)
        # Draw order unchanged: the next public decision agrees.
        assert a.bernoulli_subset(100, 0.5, tag=6) == \
            b.bernoulli_subset(100, 0.5, tag=6)
        assert a.randrange(10 ** 9) == b.randrange(10 ** 9)

    @given(st.integers(min_value=0, max_value=2 ** 31),
           st.integers(min_value=0, max_value=120))
    @settings(max_examples=60, deadline=None)
    def test_sample_without_replacement_mask_matches(self, seed, count):
        a, b = SharedRandomness(seed), SharedRandomness(seed)
        sample = a.sample_without_replacement(100, count, tag=2)
        mask = b.sample_without_replacement_mask(100, count, tag=2)
        assert mask == mask_of(sample)
        assert a.randrange(10 ** 9) == b.randrange(10 ** 9)


def _partition(n: int, d: float, k: int, seed: int, duplicated: bool):
    graph = gnd(n, d, seed=seed)
    if duplicated:
        return partition_with_duplication(graph, k, seed=seed + 1)
    return partition_disjoint(graph, k, seed=seed + 1)


class TestProtocolDifferential:
    """Whole protocol runs agree between the two player backends."""

    @pytest.mark.parametrize("duplicated", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sim_low_identical(self, seed, duplicated):
        partition = _partition(120, 5.0, 3, seed, duplicated)
        params = SimLowParams(epsilon=0.2, delta=0.2)
        mask = find_triangle_sim_low(partition, params, seed=seed)
        ref = find_triangle_sim_low(
            partition, params, seed=seed, player_factory=make_set_players
        )
        assert mask == ref

    @pytest.mark.parametrize("duplicated", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sim_high_identical(self, seed, duplicated):
        partition = _partition(120, 8.0, 3, seed, duplicated)
        for bernoulli in (False, True):
            params = SimHighParams(
                epsilon=0.2, delta=0.2, bernoulli_sampling=bernoulli
            )
            mask = find_triangle_sim_high(partition, params, seed=seed)
            ref = find_triangle_sim_high(
                partition, params, seed=seed,
                player_factory=make_set_players,
            )
            assert mask == ref

    @pytest.mark.parametrize("seed", [0, 1])
    def test_oblivious_identical(self, seed):
        partition = _partition(120, 6.0, 4, seed, True)
        params = ObliviousParams(epsilon=0.2, delta=0.2)
        mask = find_triangle_sim_oblivious(partition, params, seed=seed)
        ref = find_triangle_sim_oblivious(
            partition, params, seed=seed, player_factory=make_set_players
        )
        assert mask == ref

    @pytest.mark.parametrize("seed", [0, 1])
    def test_unrestricted_identical(self, seed):
        partition = _partition(100, 6.0, 3, seed, True)
        params = UnrestrictedParams(
            epsilon=0.2, delta=0.2, known_average_degree=6.0,
            samples_per_bucket=4, max_candidates=3,
        )
        mask = find_triangle_unrestricted(partition, params, seed=seed)
        ref = find_triangle_unrestricted(
            partition, params, seed=seed, player_factory=make_set_players
        )
        assert mask == ref

    def test_subgraph_identical(self):
        partition = _partition(120, 6.0, 3, 5, False)
        params = SubgraphParams(epsilon=0.2, rounds=2)
        mask = find_subgraph_simultaneous(partition, FOUR_CYCLE, params, seed=3)
        ref = find_subgraph_simultaneous(
            partition, FOUR_CYCLE, params, seed=3,
            player_factory=make_set_players,
        )
        assert mask == ref


# REGRESSION-TEST UPDATE (PR 4, rows-union referee re-pin): the original
# values were recorded at the seed commit (PR 2 HEAD), when referees
# unioned messages into a set[Edge] and reported whichever triangle the
# set's hash iteration order surfaced first.  PR 4 replaced that union
# with per-vertex rows searched ascending, so the *reported* triangle is
# now the canonical minimum of the same union — the found flags and every
# total_bits below are unchanged from the seed recording (messages and
# charges are untouched; asserted per point), and the triangle values
# were re-pinned under the rows referee.  tests/test_referee.py proves
# the two referees accept/reject identically.
# (n, d, trial seed) -> ((found, triangle, total_bits) per protocol).
# The far_disjoint_instance partition is built with instance seed 7.
SEED_COMMIT_BASELINE = {
    (400, 6.0, 0): (
        (True, (8, 201, 350), 5724),
        (True, (59, 86, 252), 1530),
        (True, (118, 194, 318), 8908),
    ),
    (400, 6.0, 1): (
        (True, (14, 40, 170), 6768),
        (True, (77, 202, 333), 1440),
        (True, (3, 16, 386), 10024),
    ),
    (400, 6.0, 2): (
        (True, (2, 206, 248), 6840),
        (True, (218, 254, 272), 1404),
        (True, (5, 135, 351), 9395),
    ),
    (800, 10.0, 0): (
        (True, (144, 235, 713), 11240),
        (True, (164, 166, 433), 2300),
        (True, (38, 219, 519), 25360),
    ),
}


class TestSeedCommitDeterminism:
    @pytest.mark.parametrize("point", sorted(SEED_COMMIT_BASELINE))
    def test_detection_results_unchanged(self, point):
        n, d, seed = point
        partition = far_disjoint_instance(epsilon=0.2, k=3)(n, d, 7)
        low = find_triangle_sim_low(
            partition, SimLowParams(epsilon=0.2, delta=0.2), seed=seed
        )
        high = find_triangle_sim_high(
            partition, SimHighParams(epsilon=0.2, delta=0.2, c=2.0), seed=seed
        )
        oblivious = find_triangle_sim_oblivious(
            partition, ObliviousParams(epsilon=0.2, delta=0.2), seed=seed
        )
        got = tuple(
            (r.found, r.triangle, r.cost.total_bits)
            for r in (low, high, oblivious)
        )
        assert got == SEED_COMMIT_BASELINE[point]
        # The re-pinned triangles are genuine triangles of the instance
        # (the rows referee can only have re-ordered the same union).
        triangles = set(iter_triangles(partition.graph))
        for result in (low, high, oblivious):
            assert result.triangle in triangles


CHARGES = st.lists(
    st.tuples(
        st.sampled_from(["up", "down", "broadcast", "round"]),
        st.integers(min_value=0, max_value=5),    # player / audience
        st.integers(min_value=0, max_value=200),  # bits
        st.sampled_from(["", "a", "b", "c"]),
    ),
    max_size=80,
)


def _apply(ledger: CommunicationLedger, charges) -> None:
    for op, who, bits, label in charges:
        if op == "up":
            ledger.charge_upstream(who, bits, label)
        elif op == "down":
            ledger.charge_downstream(who, bits, label)
        elif op == "broadcast":
            ledger.charge_broadcast(who, bits, label)
        else:
            ledger.begin_round()


class TestLedgerDifferential:
    @given(CHARGES)
    @settings(max_examples=150, deadline=None)
    def test_aggregate_equals_recording_twin(self, charges):
        aggregate = CommunicationLedger()
        recording = CommunicationLedger(record_messages=True)
        _apply(aggregate, charges)
        _apply(recording, charges)
        assert aggregate.summary() == recording.summary()
        assert aggregate.total_bits == recording.total_bits
        assert aggregate.upstream_bits == recording.upstream_bits
        assert aggregate.downstream_bits == recording.downstream_bits
        assert aggregate.rounds == recording.rounds
        for player in range(6):
            assert aggregate.player_bits(player) == \
                recording.player_bits(player)
        # And the recording twin's transcript re-derives its own summary.
        summary = recording.summary()
        assert summary.total_bits == sum(r.bits for r in recording.records)
        assert summary.upstream_bits == sum(
            r.bits for r in recording.records if r.receiver == COORDINATOR
        )

    def test_hundred_thousand_charges_without_record_walk(self):
        """Regression: totals are O(1) reads, not O(messages) re-sums.

        10^5 charges; the default ledger must answer every reporting
        query from counters — it retains no record list at all (records
        access raises), so no walk over per-message state is possible —
        and a record-retaining twin agrees on every total.
        """
        aggregate = CommunicationLedger()
        recording = CommunicationLedger(record_messages=True)
        for i in range(100_000):
            aggregate.charge_upstream(i % 7, i % 13, "bulk")
            recording.charge_upstream(i % 7, i % 13, "bulk")
        aggregate.charge_broadcast(5, 3, "post")
        recording.charge_broadcast(5, 3, "post")
        assert aggregate._records is None  # no per-message storage at all
        with pytest.raises(RuntimeError):
            _ = aggregate.records
        assert aggregate.summary() == recording.summary()
        assert aggregate.summary().messages == 100_005
        assert len(recording.records) == 100_005

    def test_broadcast_is_one_update(self):
        ledger = CommunicationLedger()
        ledger.charge_broadcast(1000, 7, "wide")
        assert ledger.total_bits == 7000
        assert ledger.downstream_bits == 7000
        assert ledger.summary().messages == 1000
        assert ledger.summary().bits_by_label == {"wide": 7000}

"""Differential tests: the sparse CSR kernel vs the bignum kernel.

Same shape as ``test_kernels.py`` (the packed-kernel suite): the bignum
kernel is the executable specification, and the CSR kernel — sorted
index arrays plus a delta overlay for single-edge mutation — must be
observationally identical through every :class:`MaskKernel` primitive,
with its merge-intersection triangle natives reproducing the generic
algorithms bit for bit.  Graphs run at n = 70 (> 64) so masks crossing
the uint64 word boundary exchange correctly with the packed kernel too.
The density-aware ``auto`` policy, the hot-row LRU, bulk edge-array
construction, ``memory_bytes`` and pickling are covered here.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import run_sweep
from repro.analysis.table1 import far_disjoint_instance
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.graphs import Graph, MaskKernel, get_kernel, mask_of
from repro.graphs.generators import far_instance
from repro.graphs.kernels import (
    BACKEND_ENV_VAR,
    CSR_AUTO_THRESHOLD,
    PACKED_AUTO_THRESHOLD,
    SPARSE_DENSITY_WORD_FACTOR,
    BigintKernel,
    kernel_names,
)
from repro.graphs.kernels.csr import CsrKernel
from repro.graphs.kernels.packed import PackedKernel
from repro.graphs.triangles import (
    count_triangles,
    find_triangle,
    greedy_triangle_packing,
    iter_triangles,
    make_triangle_free_by_removal,
    triangle_edges,
)

N = 70  # > 64: exchange masks straddle the packed kernel's word boundary

VERTEX = st.one_of(
    st.integers(min_value=0, max_value=N - 1),
    st.sampled_from([0, 62, 63, 64, 65, N - 1]),
)
OPS = st.lists(st.tuples(st.booleans(), VERTEX, VERTEX), max_size=150)
VERTEX_SETS = st.sets(VERTEX)


def build_both(ops) -> tuple[Graph, Graph]:
    bigint = Graph(N, backend="bigint")
    csr = Graph(N, backend="csr")
    for add, u, v in ops:
        if u == v:
            continue
        if add:
            assert bigint.add_edge(u, v) == csr.add_edge(u, v)
        else:
            assert bigint.remove_edge(u, v) == csr.remove_edge(u, v)
    return bigint, csr


class TestOverlayDifferential:
    """Interleaved mutate/probe sequences never compact, yet agree."""

    @given(OPS)
    @settings(max_examples=60, deadline=None)
    def test_point_queries_before_any_compaction(self, ops):
        bigint, csr = build_both(ops)
        # Point queries first: these run against the live overlay.
        for v in (0, 1, 63, 64, 65, N - 1):
            assert bigint.degree(v) == csr.degree(v)
            assert bigint.neighbor_mask(v) == csr.neighbor_mask(v)
        for u in (0, 13, 63, 64, N - 1):
            for v in range(N):
                assert bigint.has_edge(u, v) == csr.has_edge(u, v)
                if u != v:
                    assert (
                        bigint.common_neighbors(u, v)
                        == csr.common_neighbors(u, v)
                    )
        assert bigint.degrees() == csr.degrees()
        # Bulk queries second: these fold the overlay into the arrays.
        assert bigint.num_edges == csr.num_edges
        assert bigint.adjacency_rows() == csr.adjacency_rows()
        assert bigint.isolated_vertices() == csr.isolated_vertices()
        assert list(bigint.edges()) == list(csr.edges())
        assert bigint == csr and csr == bigint

    @given(OPS, st.lists(st.tuples(VERTEX, VERTEX_SETS), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_add_neighbors_agrees(self, ops, merges):
        bigint, csr = build_both(ops)
        for u, vertices in merges:
            mask = mask_of(vertices) & ~(1 << u)
            assert bigint.add_neighbors(u, mask) == csr.add_neighbors(u, mask)
        assert bigint == csr
        assert bigint.num_edges == csr.num_edges

    @given(OPS, VERTEX_SETS)
    @settings(max_examples=40, deadline=None)
    def test_derived_graphs_agree(self, ops, vertices):
        bigint, csr = build_both(ops)
        mask = mask_of(vertices)
        assert bigint.induced_subgraph_mask_rows(
            mask
        ) == csr.induced_subgraph_mask_rows(mask)
        assert bigint.edges_touching_mask(mask) == csr.edges_touching_mask(
            mask
        )
        assert bigint.subgraph(vertices) == csr.subgraph(vertices)

    @given(OPS, OPS)
    @settings(max_examples=30, deadline=None)
    def test_union_and_copy_agree(self, ops_a, ops_b):
        bigint_a, csr_a = build_both(ops_a)
        bigint_b, csr_b = build_both(ops_b)
        union_bigint = bigint_a.union(bigint_b)
        union_csr = csr_a.union(csr_b)
        assert union_bigint == union_csr
        assert union_bigint.num_edges == union_csr.num_edges
        # Cross-backend unions convert through the exchange format.
        assert csr_a.union(bigint_b) == union_csr
        clone = csr_a.copy()
        assert clone == csr_a
        if clone.add_edge(0, 1) or clone.remove_edge(0, 1):
            assert clone != csr_a

    @given(OPS)
    @settings(max_examples=30, deadline=None)
    def test_from_rows_round_trips_both_ways(self, ops):
        bigint, csr = build_both(ops)
        rows = bigint.adjacency_rows()
        assert CsrKernel.from_rows(N, rows).rows() == rows
        assert BigintKernel.from_rows(N, csr.kernel.rows()).rows() == rows

    @given(OPS)
    @settings(max_examples=30, deadline=None)
    def test_to_backend_round_trip(self, ops):
        bigint, csr = build_both(ops)
        assert bigint.to_backend("csr") == csr
        assert csr.to_backend("bigint") == bigint
        back = csr.to_backend("packed").to_backend("csr")
        assert back == csr and back.backend == "csr"


class TestRowCache:
    def test_mutation_invalidates_cached_rows(self):
        graph = Graph(10, backend="csr")
        graph.add_edge(0, 1)
        assert graph.neighbor_mask(0) == 1 << 1  # now cached
        assert graph.neighbor_mask(1) == 1 << 0
        graph.add_edge(0, 2)
        assert graph.neighbor_mask(0) == (1 << 1) | (1 << 2)
        graph.remove_edge(0, 1)
        assert graph.neighbor_mask(0) == 1 << 2
        assert graph.neighbor_mask(1) == 0

    def test_cache_eviction_keeps_answers_correct(self):
        from repro.graphs.kernels import csr as csr_module

        n = 3 * csr_module._ROW_CACHE_SIZE
        graph = Graph.from_edge_arrays(
            n,
            np.arange(n - 1, dtype=np.int64),
            np.arange(1, n, dtype=np.int64),
            backend="csr",
        )
        # Touch every row (evicting most), then re-read a sample.
        masks = [graph.neighbor_mask(v) for v in range(n)]
        reference = graph.to_backend("bigint")
        for v in (0, 1, n // 2, n - 2, n - 1):
            assert masks[v] == reference.neighbor_mask(v)
            assert graph.neighbor_mask(v) == reference.neighbor_mask(v)


class TestBulkEdgeArrays:
    @given(OPS)
    @settings(max_examples=30, deadline=None)
    def test_from_edge_arrays_equals_scalar_build(self, ops):
        bigint, csr = build_both(ops)
        edges = list(bigint.edges())
        us = np.array([u for u, _ in edges], dtype=np.int64)
        vs = np.array([v for _, v in edges], dtype=np.int64)
        for backend in ("bigint", "packed", "csr"):
            rebuilt = Graph.from_edge_arrays(N, us, vs, backend=backend)
            assert rebuilt == bigint
            assert rebuilt.num_edges == bigint.num_edges
        # Reversed orientation and duplicates canonicalize away.
        doubled = Graph.from_edge_arrays(
            N, np.concatenate([us, vs]), np.concatenate([vs, us]),
            backend="csr",
        )
        assert doubled == bigint and doubled.num_edges == bigint.num_edges

    def test_add_edge_arrays_counts_only_new(self):
        for backend in ("bigint", "packed", "csr"):
            graph = Graph(8, backend=backend)
            us = np.array([0, 1, 2], dtype=np.int64)
            vs = np.array([1, 2, 3], dtype=np.int64)
            assert graph.add_edge_arrays(us, vs) == 3
            assert graph.add_edge_arrays(us, vs) == 0  # idempotent
            assert graph.add_edge_arrays(
                np.array([3, 0], dtype=np.int64),
                np.array([4, 1], dtype=np.int64),
            ) == 1
            assert graph.num_edges == 4

    def test_edge_array_validation(self):
        us = np.array([0], dtype=np.int64)
        with pytest.raises(ValueError, match="length"):
            Graph.from_edge_arrays(4, us, np.array([1, 2]))
        with pytest.raises(ValueError, match="self-loop"):
            Graph.from_edge_arrays(4, us, us)
        with pytest.raises(ValueError, match="outside"):
            Graph.from_edge_arrays(4, us, np.array([4]))

    def test_complete_matches_per_vertex_fill(self):
        for backend in ("bigint", "packed", "csr"):
            quick = Graph.complete(12, backend=backend)
            slow = Graph(12, backend=backend)
            for u in range(12):
                slow.add_neighbors(u, ((1 << 12) - 1) ^ (1 << u))
            assert quick == slow
            assert quick.num_edges == 12 * 11 // 2


class TestTriangleNatives:
    @given(OPS)
    @settings(max_examples=60, deadline=None)
    def test_triangle_layer_identical(self, ops):
        bigint, csr = build_both(ops)
        assert count_triangles(bigint) == count_triangles(csr)
        assert find_triangle(bigint) == find_triangle(csr)
        assert greedy_triangle_packing(bigint) == greedy_triangle_packing(csr)
        assert list(iter_triangles(bigint)) == list(iter_triangles(csr))
        assert triangle_edges(bigint) == triangle_edges(csr)

    def test_planted_instance_identical_across_backends(self):
        built_bigint = far_instance(300, 6.0, 0.1, seed=5, backend="bigint")
        built_csr = far_instance(300, 6.0, 0.1, seed=5, backend="csr")
        gb, gc = built_bigint.graph, built_csr.graph
        assert gb.backend == "bigint" and gc.backend == "csr"
        assert gb == gc
        assert built_bigint.planted_triangles == built_csr.planted_triangles
        assert count_triangles(gb) == count_triangles(gc)
        assert find_triangle(gb) == find_triangle(gc)
        assert greedy_triangle_packing(gb) == greedy_triangle_packing(gc)
        free_b, removed_b = make_triangle_free_by_removal(gb)
        free_c, removed_c = make_triangle_free_by_removal(gc)
        assert removed_b == removed_c
        assert free_b == free_c

    def test_dense_graph_declines_to_generic_path(self):
        n = 40
        complete = Graph.complete(n, backend="csr")
        assert complete.kernel.count_triangles() is NotImplemented
        assert complete.kernel.find_triangle() is NotImplemented
        assert complete.kernel.greedy_triangle_packing() is NotImplemented
        # ...and the dispatcher falls back to the generic algorithms.
        expected = n * (n - 1) * (n - 2) // 6
        assert count_triangles(complete) == expected
        assert find_triangle(complete) == (0, 1, 2)
        reference = complete.to_backend("bigint")
        assert greedy_triangle_packing(complete) == greedy_triangle_packing(
            reference
        )


class TestRegistryAndAutoPolicy:
    def test_csr_resolves_and_satisfies_protocol(self):
        assert get_kernel("csr") is CsrKernel
        assert "csr" in kernel_names()
        assert isinstance(Graph(4, backend="csr").kernel, MaskKernel)

    def test_auto_without_hint_keeps_historical_policy(self):
        assert get_kernel("auto", 0) is BigintKernel
        assert get_kernel("auto", PACKED_AUTO_THRESHOLD - 1) is BigintKernel
        assert get_kernel("auto", PACKED_AUTO_THRESHOLD) is PackedKernel

    def test_auto_switches_to_csr_above_hard_threshold(self):
        assert get_kernel("auto", CSR_AUTO_THRESHOLD - 1) is PackedKernel
        assert get_kernel("auto", CSR_AUTO_THRESHOLD) is CsrKernel
        assert get_kernel("auto", 10**6) is CsrKernel

    def test_auto_density_hint_picks_csr_on_sparse_hosts(self):
        n = PACKED_AUTO_THRESHOLD
        sparse_edges = 4 * n  # d = 8 — far below the density cut
        dense_edges = (n * n) // SPARSE_DENSITY_WORD_FACTOR + 1
        assert get_kernel("auto", n, expected_edges=sparse_edges) is CsrKernel
        assert get_kernel("auto", n, expected_edges=dense_edges) is PackedKernel
        # Below the packed threshold the hint never overrides bigint.
        assert get_kernel("auto", 100, expected_edges=10) is BigintKernel

    def test_env_var_accepts_csr(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "csr")
        assert Graph(8).backend == "csr"
        assert Graph(8, backend="bigint").backend == "bigint"


class TestMemoryReporting:
    def test_nbytes_tracks_edges_not_n_squared(self):
        n = 4096
        sparse = Graph.from_edge_arrays(
            n,
            np.arange(n - 1, dtype=np.int64),
            np.arange(1, n, dtype=np.int64),
            backend="csr",
        )
        packed = sparse.to_backend("packed")
        assert 0 < sparse.nbytes < packed.nbytes
        # Packed is the n²/8 bitmap regardless of density.
        assert packed.nbytes == ((n + 63) // 64) * 8 * n
        # CSR is a few dozen bytes per edge plus the n+1 offsets.
        assert sparse.nbytes < 64 * sparse.num_edges + 16 * n

    def test_instance_cache_reports_bytes(self):
        from repro.runtime.cache import InstanceCache, instance_nbytes

        graph = Graph(64, [(0, 1), (1, 2)], backend="csr")
        assert instance_nbytes(graph) == graph.nbytes > 0
        cache = InstanceCache(max_entries=4)
        cache.get_or_build(("g",), lambda: graph)
        assert cache.stats()["instance_bytes"] == graph.nbytes
        cache.clear()
        assert cache.stats()["instance_bytes"] == 0


class TestPickleRoundTrip:
    @given(OPS)
    @settings(max_examples=20, deadline=None)
    def test_pickle_preserves_graph_and_backend(self, ops):
        _, csr = build_both(ops)
        clone = pickle.loads(pickle.dumps(csr))
        assert clone == csr
        assert clone.backend == "csr"
        assert clone.num_edges == csr.num_edges
        # The clone stays mutable (overlay/caches were rebuilt).
        changed = clone.add_edge(0, 1) or clone.remove_edge(0, 1)
        assert changed


class TestSweepByteIdentity:
    def test_sim_low_records_identical_across_all_backends(self, monkeypatch):
        """A pinned-seed protocol sweep is record-identical per backend.

        The small-n twin of the bench harness's scale check: generator,
        partition, players and referee must not observe which of the
        three kernels is underneath.
        """
        params = SimLowParams(epsilon=0.2, delta=0.2)
        grid = [(600, 6.0, 3)]

        def sweep():
            return run_sweep(
                lambda partition, s: find_triangle_sim_low(
                    partition, params, seed=s
                ),
                far_disjoint_instance(epsilon=0.2, k=3),
                grid, trials=2, seed=0,
            )

        records = {}
        for backend in ("bigint", "packed", "csr"):
            monkeypatch.setenv(BACKEND_ENV_VAR, backend)
            records[backend] = sweep().records
        assert records["bigint"] == records["packed"] == records["csr"]

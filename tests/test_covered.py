"""Tests for the covered/reported posterior machinery (repro.lowerbounds.covered)."""


import pytest

from repro.lowerbounds.covered import (
    analyze_player,
    covered_edges,
    covered_probability,
    delta_sum,
    expected_total_divergence,
    message_entropy_bits,
    reported_edges,
    truncation_message,
)

UNIVERSE = [(0, 0), (0, 1), (1, 0), (1, 1)]  # (u, v) pairs, 2x2


class TestAnalyzePlayer:
    def test_message_probabilities_sum_to_one(self):
        analysis = analyze_player(UNIVERSE, 0.3, truncation_message(1))
        assert sum(analysis.message_probabilities.values()) == (
            pytest.approx(1.0)
        )

    def test_posterior_of_sent_edge_is_one(self):
        analysis = analyze_player(UNIVERSE, 0.3, truncation_message(4))
        # Budget covers the whole universe: the message IS the input.
        for message in analysis.messages():
            for item in message:
                assert analysis.posterior(message, item) == pytest.approx(1.0)

    def test_empty_message_posterior_is_prior(self):
        analysis = analyze_player(UNIVERSE, 0.3, truncation_message(0))
        (message,) = analysis.messages()
        for item in UNIVERSE:
            assert analysis.posterior(message, item) == pytest.approx(0.3)

    def test_conditional_inputs_normalized(self):
        analysis = analyze_player(UNIVERSE, 0.4, truncation_message(2))
        for message, inputs in analysis.inputs_by_message.items():
            total = sum(probability for _, probability in inputs)
            assert total == pytest.approx(1.0)

    def test_prior_validated(self):
        with pytest.raises(ValueError):
            analyze_player(UNIVERSE, 0.0, truncation_message(1))

    def test_universe_cap_enforced(self):
        huge = [(0, i) for i in range(30)]
        with pytest.raises(ValueError):
            analyze_player(huge, 0.5, truncation_message(1))


class TestReportedAndDelta:
    def test_full_budget_reports_sent_edges(self):
        analysis = analyze_player(UNIVERSE, 0.3, truncation_message(4))
        message = ((0, 0), (1, 1))
        assert reported_edges(analysis, message) == {(0, 0), (1, 1)}

    def test_zero_budget_reports_nothing(self):
        analysis = analyze_player(UNIVERSE, 0.3, truncation_message(0))
        (message,) = analysis.messages()
        assert reported_edges(analysis, message) == set()

    def test_delta_sum_zero_budget(self):
        analysis = analyze_player(UNIVERSE, 0.3, truncation_message(0))
        (message,) = analysis.messages()
        # Sum of (p - 2p) over 4 items = -4p.
        assert delta_sum(analysis, message) == pytest.approx(-4 * 0.3)

    def test_delta_sum_increases_with_information(self):
        zero = analyze_player(UNIVERSE, 0.2, truncation_message(0))
        full = analyze_player(UNIVERSE, 0.2, truncation_message(4))
        (zero_message,) = zero.messages()
        rich_message = ((0, 0), (0, 1), (1, 0), (1, 1))
        assert delta_sum(full, rich_message) > delta_sum(zero, zero_message)


class TestLemma46InformationBound:
    @pytest.mark.parametrize("budget", [0, 1, 2, 4])
    def test_divergence_bounded_by_message_entropy(self, budget):
        """E_t sum_e D(posterior || prior) <= H(M) (super-additivity)."""
        analysis = analyze_player(UNIVERSE, 0.3, truncation_message(budget))
        divergence = expected_total_divergence(analysis)
        assert divergence <= message_entropy_bits(analysis) + 1e-9

    def test_zero_budget_zero_divergence(self):
        analysis = analyze_player(UNIVERSE, 0.3, truncation_message(0))
        assert expected_total_divergence(analysis) == pytest.approx(0.0)

    def test_entropy_grows_with_budget(self):
        entropies = [
            message_entropy_bits(
                analyze_player(UNIVERSE, 0.3, truncation_message(budget))
            )
            for budget in (0, 1, 2)
        ]
        assert entropies[0] < entropies[1] < entropies[2]


class TestCoveredProbability:
    def test_zero_budget_prior_cover(self):
        prior = 0.35
        alice = analyze_player(UNIVERSE, prior, truncation_message(0))
        bob = analyze_player(UNIVERSE, prior, truncation_message(0))
        (m1,) = alice.messages()
        (m2,) = bob.messages()
        # P(exists u in {0,1}: both edges present) = 1 - (1 - p^2)^2.
        expected = 1 - (1 - prior ** 2) ** 2
        assert covered_probability(
            alice, bob, m1, m2, 0, 0, [0, 1]
        ) == pytest.approx(expected)

    def test_full_budget_certainty(self):
        alice = analyze_player(UNIVERSE, 0.35, truncation_message(4))
        bob = analyze_player(UNIVERSE, 0.35, truncation_message(4))
        m1 = ((0, 0),)  # Alice holds exactly (u=0, v1=0)
        m2 = ((0, 0),)  # Bob holds exactly (u=0, v2=0)
        assert covered_probability(
            alice, bob, m1, m2, 0, 0, [0, 1]
        ) == pytest.approx(1.0)

    def test_disjoint_u_no_cover(self):
        alice = analyze_player(UNIVERSE, 0.35, truncation_message(4))
        bob = analyze_player(UNIVERSE, 0.35, truncation_message(4))
        m1 = ((0, 0),)  # Alice's vee arm at u=0
        m2 = ((1, 0),)  # Bob's at u=1: no common source
        assert covered_probability(
            alice, bob, m1, m2, 0, 0, [0, 1]
        ) == pytest.approx(0.0)

    def test_covered_edges_threshold(self):
        alice = analyze_player(UNIVERSE, 0.35, truncation_message(4))
        bob = analyze_player(UNIVERSE, 0.35, truncation_message(4))
        m1 = ((0, 0), (0, 1))
        m2 = ((0, 0), (0, 1))
        pairs = [(v1, v2) for v1 in (0, 1) for v2 in (0, 1)]
        covered = covered_edges(alice, bob, m1, m2, pairs, [0, 1])
        assert covered == set(pairs)  # u=0 covers every (v1, v2)


class TestTruncationMessage:
    def test_deterministic(self):
        fn = truncation_message(2)
        subset = frozenset({(1, 1), (0, 0), (0, 1)})
        assert fn(subset) == fn(subset)

    def test_budget_zero_constant(self):
        fn = truncation_message(0)
        assert fn(frozenset({(0, 0)})) == fn(frozenset())

    def test_message_space_grows_with_budget(self):
        space_sizes = []
        for budget in (0, 1, 2):
            analysis = analyze_player(
                UNIVERSE, 0.5, truncation_message(budget)
            )
            space_sizes.append(len(analysis.message_probabilities))
        assert space_sizes[0] < space_sizes[1] < space_sizes[2]

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            truncation_message(-1)

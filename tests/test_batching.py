"""Differential tests for the batched trial engine (PR 7).

The contract under test: ``run_trials(batch=True)`` (and the batched
``run_sweep`` default) produces `TrialResult` records byte-identical to
the per-trial reference path, across every protocol family and across
serial/parallel executors; the batched path builds each grid point's
instance once when instance seeds are shared; and the migrated Table 1
loops (T1-R3 / T1-R6) match their historical inline implementations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import DefaultInstanceBuilder, run_sweep
from repro.analysis.table1 import row_bm_lower, row_oneway_streaming_lower
from repro.core.exact_baseline import (
    exact_triangle_detection,
    exact_triangle_detection_blackboard,
)
from repro.core.oblivious import ObliviousParams, find_triangle_sim_oblivious
from repro.core.simultaneous_high import SimHighParams, find_triangle_sim_high
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.core.subgraph_detection import (
    FOUR_CYCLE,
    SubgraphParams,
    find_subgraph_simultaneous,
)
from repro.core.unrestricted import (
    UnrestrictedParams,
    find_triangle_unrestricted,
)
from repro.graphs.triangles import greedy_triangle_packing, is_triangle_free
from repro.lowerbounds.boolean_matching import (
    bm_product,
    reduction_graph,
    sample_bm_instance,
)
from repro.lowerbounds.distributions import MuDistribution
from repro.runtime import (
    InstanceCache,
    ParallelExecutor,
    SerialExecutor,
    TrialSpec,
    batch_specs,
    build_specs,
    run_trials,
)
from repro.streaming.stream import run_stream
from repro.streaming.triangle_stream import ReservoirTriangleFinder

GRID = [(120, 4.0, 3), (200, 4.0, 3)]


@pytest.fixture(autouse=True)
def _isolate_workers_env(monkeypatch):
    """An ambient REPRO_WORKERS must not reroute the executor-sensitive
    assertions below (cache counters live in the parent process only)."""
    monkeypatch.delenv("REPRO_WORKERS", raising=False)


# Module-level protocol wrappers: picklable, and declaring the `shared`
# seam so the batched engine hands them pre-built coin streams.
def sim_low_protocol(partition, seed, *, shared=None):
    return find_triangle_sim_low(
        partition, SimLowParams(epsilon=0.3, delta=0.2), seed=seed,
        shared=shared,
    )


def sim_high_protocol(partition, seed, *, shared=None):
    return find_triangle_sim_high(
        partition, SimHighParams(epsilon=0.3, delta=0.2), seed=seed,
        shared=shared,
    )


def oblivious_protocol(partition, seed, *, shared=None):
    return find_triangle_sim_oblivious(
        partition, ObliviousParams(epsilon=0.3, delta=0.2), seed=seed,
        shared=shared,
    )


def unrestricted_protocol(partition, seed, *, shared=None):
    return find_triangle_unrestricted(
        partition,
        UnrestrictedParams(epsilon=0.3, delta=0.2, known_average_degree=4.0,
                           samples_per_bucket=4, max_candidates=3),
        seed=seed, shared=shared,
    )


def subgraph_protocol(partition, seed, *, shared=None):
    return find_subgraph_simultaneous(
        partition, FOUR_CYCLE, SubgraphParams(epsilon=0.3, rounds=2),
        seed=seed, shared=shared,
    )


def exact_protocol(partition, seed):
    return exact_triangle_detection(partition)


def exact_blackboard_protocol(partition, seed):
    return exact_triangle_detection_blackboard(partition)


PROTOCOLS = {
    "sim-low": sim_low_protocol,
    "sim-high": sim_high_protocol,
    "sim-oblivious": oblivious_protocol,
    "unrestricted": unrestricted_protocol,
    "subgraph": subgraph_protocol,
    "exact": exact_protocol,
    "exact-blackboard": exact_blackboard_protocol,
}


class TestBatchSpecs:
    def test_groups_by_point_preserving_order(self):
        specs = build_specs(GRID, trials=3, sweep_seed=0)
        batches = batch_specs(specs)
        assert [b.point_index for b in batches] == [0, 1]
        assert [len(b) for b in batches] == [3, 3]
        assert [s for b in batches for s in b.specs] == specs

    def test_interleaved_specs_regroup(self):
        specs = build_specs(GRID, trials=2, sweep_seed=0)
        shuffled = [specs[0], specs[2], specs[1], specs[3]]
        batches = batch_specs(shuffled)
        assert [b.point_index for b in batches] == [0, 1]
        assert batches[0].specs == (specs[0], specs[1])

    def test_effective_instance_seed_defaults_to_seed(self):
        spec = TrialSpec(0, 0, 10, 2.0, 3, seed=99)
        assert spec.effective_instance_seed == 99
        pinned = TrialSpec(0, 0, 10, 2.0, 3, seed=99, instance_seed=7)
        assert pinned.effective_instance_seed == 7

    def test_shared_instances_pins_per_point_seed(self):
        specs = build_specs(GRID, trials=3, sweep_seed=5,
                            shared_instances=True)
        by_point = {}
        for spec in specs:
            by_point.setdefault(spec.point_index, set()).add(
                spec.instance_seed
            )
        assert all(len(seeds) == 1 for seeds in by_point.values())
        assert by_point[0] != by_point[1]
        # Coin seeds stay per-trial.
        assert len({s.seed for s in specs}) == len(specs)

    def test_default_specs_identical_to_previous_releases(self):
        plain = build_specs(GRID, trials=2, sweep_seed=3)
        assert all(s.instance_seed is None for s in plain)


class TestBatchedIdentity:
    """Batched-vs-per-trial byte-identity, per protocol family."""

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_batched_matches_per_trial_serial(self, name):
        protocol = PROTOCOLS[name]
        specs = build_specs(GRID, trials=3, sweep_seed=11)
        builder = DefaultInstanceBuilder(epsilon=0.3, k=3)
        reference = run_trials(protocol, builder, specs,
                               executor=SerialExecutor())
        batched = run_trials(protocol, builder, specs,
                             executor=SerialExecutor(), batch=True)
        assert batched == reference

    @pytest.mark.parametrize("name", ["sim-low", "unrestricted"])
    def test_batched_matches_per_trial_parallel(self, name):
        protocol = PROTOCOLS[name]
        specs = build_specs(GRID, trials=3, sweep_seed=11)
        builder = DefaultInstanceBuilder(epsilon=0.3, k=3)
        reference = run_trials(protocol, builder, specs,
                               executor=SerialExecutor())
        parallel_batched = run_trials(protocol, builder, specs,
                                      executor=ParallelExecutor(workers=2),
                                      batch=True)
        assert parallel_batched == reference

    def test_shared_instance_specs_identical_across_paths(self):
        specs = build_specs(GRID, trials=3, sweep_seed=11,
                            shared_instances=True)
        builder = DefaultInstanceBuilder(epsilon=0.3, k=3)
        reference = run_trials(sim_low_protocol, builder, specs,
                               executor=SerialExecutor())
        batched = run_trials(sim_low_protocol, builder, specs,
                             executor=SerialExecutor(), batch=True)
        parallel = run_trials(sim_low_protocol, builder, specs,
                              executor=ParallelExecutor(workers=2),
                              batch=True)
        assert batched == reference
        assert parallel == reference

    def test_run_sweep_batched_default_matches_reference(self):
        builder = DefaultInstanceBuilder(epsilon=0.3, k=3)
        batched = run_sweep(sim_low_protocol, builder, GRID,
                            trials=3, seed=4)
        reference = run_sweep(sim_low_protocol, builder, GRID,
                              trials=3, seed=4, batch=False)
        assert batched.records == reference.records
        assert batched.points == reference.points


class TestBatchedCacheSemantics:
    def test_shared_instances_build_once_per_grid_point(self):
        """A batched shared-instance sweep touches the cache exactly once
        per grid point: one miss/build each, zero hits (the batch-local
        instance map absorbs the repetition axis)."""
        builder = DefaultInstanceBuilder(epsilon=0.3, k=3)
        cache = InstanceCache()
        specs = build_specs(GRID, trials=4, sweep_seed=2,
                            shared_instances=True)
        run_trials(sim_low_protocol, builder, specs,
                   executor=SerialExecutor(), batch=True,
                   cache=cache, instance_key="batching-test")
        stats = cache.stats()
        assert stats["builds"] == len(GRID)
        assert stats["misses"] == len(GRID)
        assert stats["hits"] == 0
        assert stats["build_seconds"] > 0.0

    def test_per_trial_seeds_preserve_cache_counts(self):
        """With historical per-trial instance seeds the batched path keeps
        the per-trial cache access pattern (distinct keys, no coalescing),
        so cross-sweep reuse accounting is unchanged."""
        builder = DefaultInstanceBuilder(epsilon=0.3, k=3)
        cache = InstanceCache()
        specs = build_specs(GRID, trials=2, sweep_seed=2)
        run_trials(sim_low_protocol, builder, specs,
                   executor=SerialExecutor(), batch=True,
                   cache=cache, instance_key="batching-test")
        assert cache.stats()["misses"] == len(specs)
        run_trials(sim_low_protocol, builder, specs,
                   executor=SerialExecutor(), batch=True,
                   cache=cache, instance_key="batching-test")
        assert cache.stats()["hits"] == len(specs)

    def test_stats_reset_on_clear(self):
        cache = InstanceCache()
        cache.get_or_build(("k",), lambda: 1)
        assert cache.stats()["builds"] == 1
        cache.clear()
        stats = cache.stats()
        assert stats == {"hits": 0, "misses": 0, "entries": 0,
                         "builds": 0, "build_seconds": 0.0,
                         "quarantined": 0, "instance_bytes": 0}


class TestMigratedTable1Loops:
    """T1-R3 / T1-R6 on the executor path match the historical loops."""

    def test_bm_row_matches_inline_loop(self):
        seed, n, trials = 3, 24, 10
        verified = 0
        for trial in range(trials):
            zeros = sample_bm_instance(n, "zeros", seed=seed + trial)
            ones = sample_bm_instance(n, "ones", seed=seed + trial)
            graph_zeros, _, _ = reduction_graph(zeros)
            graph_ones, _, _ = reduction_graph(ones)
            zero_ok = (
                all(bit == 0 for bit in bm_product(zeros))
                and len(greedy_triangle_packing(graph_zeros)) == n
            )
            one_ok = (
                all(bit == 1 for bit in bm_product(ones))
                and is_triangle_free(graph_ones)
            )
            if zero_ok and one_ok:
                verified += 1
        report = row_bm_lower(quick=True, seed=seed)
        assert report.measured == verified / trials

    def test_streaming_row_matches_inline_loop(self):
        seed, trials = 5, 10
        sizes = [2, 4, 8, 16, 32, 64, 128, 256]

        def old_needed_space(part_size):
            mu = MuDistribution(part_size=part_size, gamma=1.2)
            for size in sizes:
                successes = 0
                for trial in range(trials):
                    sample = mu.sample(seed=seed + trial)
                    if is_triangle_free(sample.graph):
                        successes += 1
                        continue
                    finder = ReservoirTriangleFinder(
                        sample.graph.n, reservoir_size=size,
                        seed=seed + 31 * trial,
                    )
                    run = run_stream(finder, sorted(sample.graph.edges()))
                    if run.result is not None:
                        successes += 1
                if successes / trials >= 0.5:
                    return size
            return sizes[-1]

        expected = old_needed_space(96) / max(1, old_needed_space(24))
        report = row_oneway_streaming_lower(quick=True, seed=seed)
        assert report.measured == expected

    def test_migrated_rows_worker_invariant(self):
        serial_bm = row_bm_lower(quick=True, seed=1, workers=1)
        parallel_bm = row_bm_lower(quick=True, seed=1, workers=2)
        assert serial_bm.measured == parallel_bm.measured
        serial_stream = row_oneway_streaming_lower(quick=True, seed=1,
                                                   workers=1)
        parallel_stream = row_oneway_streaming_lower(quick=True, seed=1,
                                                     workers=2)
        assert serial_stream.measured == parallel_stream.measured


class TestSharedSeamEquivalence:
    """Protocols given an injected stream equal their self-seeded runs."""

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_injected_stream_matches_internal(self, seed):
        from repro.comm.randomness import SharedRandomness

        builder = DefaultInstanceBuilder(epsilon=0.3, k=3)
        partition = builder(120, 4.0, seed % 1000)
        direct = sim_low_protocol(partition, seed)
        injected = sim_low_protocol(
            partition, seed, shared=SharedRandomness(seed)
        )
        assert injected.found == direct.found
        assert injected.triangle == direct.triangle
        assert injected.cost == direct.cost

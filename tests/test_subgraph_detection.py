"""Tests for the H-freeness extension (repro.core.subgraph_detection)."""

import pytest

from repro.core.subgraph_detection import (
    FIVE_CYCLE,
    FOUR_CLIQUE,
    FOUR_CYCLE,
    TRIANGLE,
    SubgraphParams,
    SubgraphPattern,
    find_copy_among,
    find_subgraph_simultaneous,
    planted_disjoint_subgraphs,
)
from repro.graphs.generators import bipartite_triangle_free
from repro.graphs.graph import Graph
from repro.graphs.partition import partition_disjoint
from repro.patterns.matcher import is_copy_in_rows
from repro.patterns.reference import networkx_available


class TestPatterns:
    def test_builtins_consistent(self):
        assert TRIANGLE.num_edges == 3
        assert FOUR_CLIQUE.num_edges == 6
        assert FOUR_CYCLE.num_edges == 4
        assert FIVE_CYCLE.num_vertices == 5

    def test_invalid_edge_rejected(self):
        with pytest.raises(ValueError):
            SubgraphPattern("bad", 3, ((0, 3),))
        with pytest.raises(ValueError):
            SubgraphPattern("loop", 3, ((1, 1),))

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            SubgraphPattern("empty", 3, ())


class TestFindCopyAmong:
    def test_finds_triangle(self):
        copy = find_copy_among([(0, 1), (1, 2), (0, 2)], TRIANGLE)
        assert copy is not None
        assert set(copy) == {0, 1, 2}

    def test_finds_c4(self):
        copy = find_copy_among([(0, 1), (1, 2), (2, 3), (0, 3)], FOUR_CYCLE)
        assert copy is not None
        assert set(copy) == {0, 1, 2, 3}

    def test_monomorphic_not_induced(self):
        # K4 contains C4 as a (non-induced) subgraph: must be found.
        k4_edges = [(u, v) for u in range(4) for v in range(u + 1, 4)]
        assert find_copy_among(k4_edges, FOUR_CYCLE) is not None

    def test_none_when_absent(self):
        assert find_copy_among([(0, 1), (1, 2)], TRIANGLE) is None

    def test_too_few_edges_short_circuit(self):
        assert find_copy_among([(0, 1)], FOUR_CLIQUE) is None


class TestPlantedInstances:
    @pytest.mark.parametrize("pattern", [FOUR_CLIQUE, FOUR_CYCLE, FIVE_CYCLE])
    def test_copies_planted(self, pattern):
        instance = planted_disjoint_subgraphs(200, pattern, 10, seed=1)
        assert len(instance.planted_copies) == 10
        for image in instance.planted_copies:
            for u, v in pattern.edges:
                assert instance.graph.has_edge(image[u], image[v])

    def test_copies_vertex_disjoint(self):
        instance = planted_disjoint_subgraphs(200, FOUR_CLIQUE, 12, seed=2)
        seen: set[int] = set()
        for image in instance.planted_copies:
            assert not (set(image) & seen)
            seen.update(image)

    def test_too_many_copies_rejected(self):
        with pytest.raises(ValueError):
            planted_disjoint_subgraphs(10, FOUR_CLIQUE, 3)

    def test_certificate(self):
        instance = planted_disjoint_subgraphs(100, FOUR_CYCLE, 5, seed=3)
        assert instance.epsilon_certified == pytest.approx(5 / 20)


class TestDetection:
    @pytest.mark.parametrize("pattern", [FOUR_CLIQUE, FOUR_CYCLE, FIVE_CYCLE])
    def test_detects_planted(self, pattern):
        instance = planted_disjoint_subgraphs(
            500, pattern, 30, seed=4, background_degree=1.0
        )
        partition = partition_disjoint(instance.graph, 3, seed=5)
        params = SubgraphParams(epsilon=0.15, c=2.0, rounds=4)
        hits = sum(
            find_subgraph_simultaneous(
                partition, pattern, params, seed=seed
            ).found
            for seed in range(4)
        )
        assert hits >= 3, f"{pattern.name} detection too weak"

    def test_witness_is_real(self):
        instance = planted_disjoint_subgraphs(400, FOUR_CYCLE, 25, seed=6)
        partition = partition_disjoint(instance.graph, 3, seed=7)
        result = find_subgraph_simultaneous(
            partition, FOUR_CYCLE, SubgraphParams(epsilon=0.2, c=2.0), seed=8
        )
        if result.found:
            for u, v in result.witness_edges:
                assert instance.graph.has_edge(u, v)

    def test_one_sided_k4_on_triangle_free(self):
        # Triangle-free graphs are K4-free a fortiori.
        control = bipartite_triangle_free(400, 6.0, seed=9)
        partition = partition_disjoint(control, 3, seed=10)
        for seed in range(3):
            result = find_subgraph_simultaneous(
                partition, FOUR_CLIQUE,
                SubgraphParams(epsilon=0.2, c=2.0), seed=seed,
            )
            assert not result.found

    def test_one_sided_c4_on_tree(self):
        tree = Graph(200, [(i, i + 1) for i in range(199)])
        partition = partition_disjoint(tree, 3, seed=11)
        for seed in range(3):
            assert not find_subgraph_simultaneous(
                partition, FOUR_CYCLE,
                SubgraphParams(epsilon=0.3, c=3.0), seed=seed,
            ).found

    def test_triangle_specialization_matches_alg9_shape(self):
        # For K3 the sampling probability has the Algorithm 9 form
        # (n^2/(eps d))^{1/3} / n = (1/(eps n d))^{1/3} up to constants.
        params = SubgraphParams(epsilon=0.2, c=1.0)
        n, d = 10_000, 100.0
        p = params.sample_probability(n, d, TRIANGLE)
        expected = (2 * 3 / (0.2 * n * d)) ** (1 / 3)
        assert p == pytest.approx(expected)

    def test_cost_reported(self):
        instance = planted_disjoint_subgraphs(300, FOUR_CYCLE, 15, seed=12)
        partition = partition_disjoint(instance.graph, 3, seed=13)
        result = find_subgraph_simultaneous(
            partition, FOUR_CYCLE, SubgraphParams(epsilon=0.2), seed=14
        )
        assert result.total_bits > 0
        assert result.details["pattern"] == "C4"

    def test_params_validated(self):
        with pytest.raises(ValueError):
            SubgraphParams(epsilon=0.0)
        with pytest.raises(ValueError):
            SubgraphParams(rounds=0)


# REGRESSION-TEST BASELINE (patterns PR, rows-native subgraph referee):
# recorded when find_subgraph_simultaneous moved from the set[Edge]
# union + networkx VF2 referee to the rows union + canonical-first mask
# matcher — the last set-based union in production code.  Messages and
# charges are untouched by the referee swap, so total_bits matches what
# the VF2 referee measured; the *copy* is now the canonical-first image
# (a deterministic function of the round's union — note the identical
# copies across protocol seeds below, where VF2 reported whatever its
# search order surfaced first).
# (pattern name, protocol seed) -> (found, copy, total_bits, round).
_BASELINE_PATTERNS = {"K4": FOUR_CLIQUE, "C4": FOUR_CYCLE, "C5": FIVE_CYCLE}
ROWS_REFEREE_BASELINE = {
    ("K4", 0): (True, (5, 58, 364, 386), 27000, 0),
    ("K4", 1): (True, (5, 58, 364, 386), 26784, 0),
    ("C4", 0): (True, (5, 58, 364, 386), 21924, 0),
    ("C4", 1): (True, (5, 58, 364, 386), 20142, 0),
    ("C5", 0): (True, (5, 119, 398, 129, 386), 26568, 0),
    ("C5", 1): (True, (5, 119, 398, 129, 386), 26568, 0),
}


class TestRowsRefereeBaseline:
    @pytest.mark.parametrize("point", sorted(ROWS_REFEREE_BASELINE))
    def test_detection_results_pinned(self, point):
        name, seed = point
        pattern = _BASELINE_PATTERNS[name]
        instance = planted_disjoint_subgraphs(
            400, pattern, 20, seed=9, background_degree=2.0
        )
        partition = partition_disjoint(instance.graph, 3, seed=10)
        result = find_subgraph_simultaneous(
            partition, pattern,
            SubgraphParams(epsilon=0.2, c=2.0, rounds=3), seed=seed,
        )
        got = (
            result.found, result.copy, result.total_bits,
            result.details["winning_round"],
        )
        assert got == ROWS_REFEREE_BASELINE[point]
        # The pinned copy is a genuine monomorphism image of the actual
        # input graph (the referee can only have found real edges).
        assert is_copy_in_rows(
            instance.graph.adjacency_rows(), pattern, result.copy
        )
        for u, v in result.witness_edges:
            assert instance.graph.has_edge(u, v)


@pytest.mark.skipif(not networkx_available(),
                    reason="optional reference dep networkx missing")
class TestMatcherSeamDifferential:
    """The preserved VF2 referee, through the ``matcher=`` seam."""

    @pytest.mark.parametrize("pattern", [FOUR_CLIQUE, FOUR_CYCLE, FIVE_CYCLE])
    def test_vf2_referee_agrees_on_found_and_bits(self, pattern):
        from repro.patterns.reference import find_copy_in_rows_reference

        instance = planted_disjoint_subgraphs(
            300, pattern, 15, seed=12, background_degree=1.5
        )
        partition = partition_disjoint(instance.graph, 3, seed=13)
        params = SubgraphParams(epsilon=0.2, c=2.0, rounds=3)
        for seed in range(3):
            mask = find_subgraph_simultaneous(
                partition, pattern, params, seed=seed
            )
            vf2 = find_subgraph_simultaneous(
                partition, pattern, params, seed=seed,
                matcher=find_copy_in_rows_reference,
            )
            # Identical messages and charges; identical verdict and
            # winning round.  Only the reported image may differ, and
            # both must be genuine.
            assert mask.found == vf2.found
            assert mask.total_bits == vf2.total_bits
            assert mask.details == vf2.details
            if mask.found:
                rows = instance.graph.adjacency_rows()
                assert is_copy_in_rows(rows, pattern, mask.copy)
                assert is_copy_in_rows(rows, pattern, vf2.copy)

    def test_vf2_referee_agrees_on_h_free_control(self):
        from repro.patterns.reference import find_copy_in_rows_reference

        control = bipartite_triangle_free(300, 5.0, seed=14)
        partition = partition_disjoint(control, 3, seed=15)
        params = SubgraphParams(epsilon=0.2, c=2.0, rounds=2)
        for pattern in (FOUR_CLIQUE, FIVE_CYCLE):
            mask = find_subgraph_simultaneous(
                partition, pattern, params, seed=16
            )
            vf2 = find_subgraph_simultaneous(
                partition, pattern, params, seed=16,
                matcher=find_copy_in_rows_reference,
            )
            assert not mask.found and not vf2.found
            assert mask == vf2

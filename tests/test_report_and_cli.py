"""Tests for the report writer and the CLI entry point."""

import subprocess
import sys

from env_helpers import child_env
from repro.analysis.report import build_report, write_report
from repro.analysis.__main__ import ROWS_BY_ID, main

_CHILD_ENV = child_env()


class TestCli:
    def test_single_fast_row(self, capsys):
        exit_code = main(["--row", "T1-R6"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "T1-R6" in out
        assert "measured=" in out

    def test_unknown_row(self, capsys):
        exit_code = main(["--row", "T1-R99"])
        assert exit_code == 2
        assert "unknown row" in capsys.readouterr().err

    def test_rows_by_id_covers_all(self):
        from repro.analysis.table1 import ALL_ROWS

        assert len(ROWS_BY_ID) == len(ALL_ROWS)
        assert set(ROWS_BY_ID.values()) == set(ALL_ROWS)

    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--row", "L4.5"],
            capture_output=True, text=True, timeout=300, env=_CHILD_ENV,
        )
        assert result.returncode == 0
        assert "L4.5" in result.stdout


class TestReportRendering:
    def test_row_rendering(self):
        from repro.analysis.table1 import RowReport
        from repro.analysis.report import _render_row

        row = RowReport(
            row_id="T1-X", description="demo", paper_bound="O(1)",
            metric="bits", claimed=None, measured=1.5, note="n/a",
        )
        rendered = _render_row(row)
        assert rendered.startswith("| T1-X |")
        assert "—" in rendered
        assert "1.500" in rendered

    def test_write_report_roundtrip(self, tmp_path, monkeypatch):
        # Restrict to the fast rows so the round-trip test stays quick;
        # the full-suite path is exercised by the benchmarks.
        import repro.analysis.report as report_module
        from repro.analysis import table1

        monkeypatch.setattr(
            report_module, "ALL_ROWS",
            [table1.row_bm_lower, table1.row_symmetrization],
        )
        target = write_report(tmp_path / "report.md", quick=True, seed=0)
        text = target.read_text()
        assert "# Table 1 reproduction report" in text
        assert "T1-R6" in text
        assert "T1-R5" in text
        assert "| row | seconds |" in text

    def test_build_report_header(self, monkeypatch):
        import repro.analysis.report as report_module
        from repro.analysis import table1

        monkeypatch.setattr(
            report_module, "ALL_ROWS", [table1.row_bm_lower]
        )
        text = build_report(quick=True, seed=1)
        assert "mode: quick, seed 1" in text
        assert "python" in text

"""Unit tests for the core graph type (repro.graphs.graph)."""

import pytest

from repro.graphs.graph import Graph, canonical_edge


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            canonical_edge(3, 3)


class TestConstruction:
    def test_empty(self):
        graph = Graph(5)
        assert graph.n == 5
        assert graph.num_edges == 0

    def test_from_edges(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert graph.num_edges == 2
        assert graph.has_edge(1, 0)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_duplicate_edges_ignored(self):
        graph = Graph(3)
        assert graph.add_edge(0, 1) is True
        assert graph.add_edge(1, 0) is False
        assert graph.num_edges == 1

    def test_out_of_range_vertex_rejected(self):
        graph = Graph(3)
        with pytest.raises(ValueError):
            graph.add_edge(0, 3)
        with pytest.raises(ValueError):
            graph.has_edge(-1, 0)


class TestMutation:
    def test_remove_edge(self):
        graph = Graph(3, [(0, 1)])
        assert graph.remove_edge(1, 0) is True
        assert graph.num_edges == 0
        assert not graph.has_edge(0, 1)

    def test_remove_absent_edge(self):
        graph = Graph(3)
        assert graph.remove_edge(0, 1) is False

    def test_copy_is_independent(self):
        graph = Graph(3, [(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.num_edges == 1
        assert clone.num_edges == 2


class TestQueries:
    def test_degree(self):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1

    def test_neighbors(self):
        graph = Graph(4, [(0, 1), (0, 2)])
        assert graph.neighbors(0) == frozenset({1, 2})

    def test_average_degree(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert graph.average_degree() == pytest.approx(1.0)

    def test_average_degree_empty_graph(self):
        assert Graph(0).average_degree() == 0.0

    def test_edges_canonical_and_unique(self):
        graph = Graph(4, [(1, 0), (3, 2), (0, 2)])
        edges = list(graph.edges())
        assert len(edges) == 3
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == 3

    def test_degrees_vector(self):
        graph = Graph(3, [(0, 1)])
        assert graph.degrees() == [1, 1, 0]

    def test_isolated_vertices(self):
        graph = Graph(4, [(0, 1)])
        assert graph.isolated_vertices() == [2, 3]

    def test_has_edge_self_loop_false(self):
        graph = Graph(3, [(0, 1)])
        assert not graph.has_edge(1, 1)

    def test_contains_dunder(self):
        graph = Graph(3, [(0, 1)])
        assert (0, 1) in graph
        assert (1, 0) in graph
        assert (0, 2) not in graph


class TestDerivedGraphs:
    def test_induced_subgraph_edges(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert graph.induced_subgraph_edges({0, 1, 2}) == {(0, 1), (1, 2)}

    def test_edges_touching(self):
        graph = Graph(5, [(0, 1), (1, 2), (3, 4)])
        assert graph.edges_touching({1}) == {(0, 1), (1, 2)}

    def test_subgraph_preserves_ids(self):
        graph = Graph(5, [(0, 1), (2, 3)])
        sub = graph.subgraph({2, 3})
        assert sub.n == 5
        assert sub.has_edge(2, 3)
        assert not sub.has_edge(0, 1)

    def test_union(self):
        a = Graph(4, [(0, 1)])
        b = Graph(4, [(1, 2)])
        merged = a.union(b)
        assert merged.edge_set() == {(0, 1), (1, 2)}

    def test_union_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Graph(3).union(Graph(4))


class TestInterop:
    def test_equality(self):
        assert Graph(3, [(0, 1)]) == Graph(3, [(1, 0)])
        assert Graph(3, [(0, 1)]) != Graph(3, [(0, 2)])
        assert Graph(3) != Graph(4)

    def test_repr(self):
        assert repr(Graph(3, [(0, 1)])) == "Graph(n=3, m=1, backend='bigint')"

    def test_to_networkx(self):
        graph = Graph(4, [(0, 1), (1, 2)])
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 2

"""Tests for the concrete one-way triangle-edge protocol on µ."""

import pytest

from repro.graphs.triangles import triangle_edges
from repro.lowerbounds.distributions import MuDistribution
from repro.lowerbounds.oneway_protocols import (
    budget_success_curve,
    oneway_triangle_edge_protocol,
)
from repro.lowerbounds.reference import (
    oneway_triangle_edge_protocol_reference,
)
from repro.runtime import ParallelExecutor, SerialExecutor

MU = MuDistribution(part_size=30, gamma=1.3)


class TestProtocol:
    def test_output_is_charlies_edge(self):
        sample = MU.sample_far(seed=1)
        run = oneway_triangle_edge_protocol(sample, alice_budget=64, seed=2)
        if run.output is not None:
            assert run.output in sample.charlie_edges

    def test_output_is_triangle_edge(self):
        """Soundness: the intersect construction certifies the triangle."""
        for seed in range(4):
            sample = MU.sample_far(seed=10 + seed)
            run = oneway_triangle_edge_protocol(
                sample, alice_budget=256, seed=seed
            )
            if run.output is not None:
                assert run.output in triangle_edges(sample.graph)

    def test_bits_track_budget(self):
        sample = MU.sample_far(seed=3)
        small = oneway_triangle_edge_protocol(sample, 4, seed=4)
        large = oneway_triangle_edge_protocol(sample, 64, seed=4)
        assert small.total_bits < large.total_bits

    def test_zero_budget_never_succeeds(self):
        sample = MU.sample_far(seed=5)
        run = oneway_triangle_edge_protocol(sample, 0, seed=6)
        assert run.output is None

    def test_two_transcript_messages(self):
        sample = MU.sample_far(seed=7)
        run = oneway_triangle_edge_protocol(sample, 16, seed=8)
        assert len(run.transcript.messages) == 2
        senders = [sender for sender, _, _ in run.transcript.messages]
        assert senders == [0, 1]

    def test_negative_budget_rejected(self):
        sample = MU.sample_far(seed=9)
        with pytest.raises(ValueError):
            oneway_triangle_edge_protocol(sample, -1)

    def test_deterministic_given_seed(self):
        sample = MU.sample_far(seed=11)
        first = oneway_triangle_edge_protocol(sample, 32, seed=12)
        second = oneway_triangle_edge_protocol(sample, 32, seed=12)
        assert first.output == second.output
        assert first.total_bits == second.total_bits


class TestMaskReferenceDifferential:
    """The rows rewrite is pinned to the per-edge set predecessor."""

    @pytest.mark.parametrize("seed", range(5))
    def test_runs_byte_identical(self, seed):
        sample = MU.sample_far(seed=20 + seed)
        for budget in (0, 1, 3, 16, 64, 512):
            mask = oneway_triangle_edge_protocol(sample, budget, seed=seed)
            ref = oneway_triangle_edge_protocol_reference(
                sample, budget, seed=seed
            )
            assert mask.output == ref.output
            assert mask.total_bits == ref.total_bits
            # Transcripts byte-identical: same payloads in the same
            # canonical order, same per-message charges.
            assert mask.transcript.messages == ref.transcript.messages

    def test_shuffled_draw_sequence_preserved(self):
        """Both implementations consume the same public coins."""
        sample = MU.sample_far(seed=31)
        mask = oneway_triangle_edge_protocol(sample, 8, seed=5)
        ref = oneway_triangle_edge_protocol_reference(sample, 8, seed=5)
        # Alice's sample is a shuffle prefix: identical draw => identical
        # prefix, not merely an equal-as-set message.
        assert mask.transcript.payloads()[0] == ref.transcript.payloads()[0]


class TestCurveParallel:
    def test_serial_and_parallel_curves_byte_identical(self):
        budgets = [2, 16, 64]
        serial = budget_success_curve(
            MU, budgets, trials=6, seed=3, executor=SerialExecutor()
        )
        parallel = budget_success_curve(
            MU, budgets, trials=6, seed=3,
            executor=ParallelExecutor(workers=4),
        )
        assert serial == parallel

    def test_workers_arg_matches_default(self):
        budgets = [4, 32]
        default = budget_success_curve(MU, budgets, trials=4, seed=7)
        explicit = budget_success_curve(
            MU, budgets, trials=4, seed=7, workers=2
        )
        assert default == explicit


class TestCurve:
    def test_success_monotone_ish_in_budget(self):
        points = budget_success_curve(
            MU, budgets=[2, 16, 256], trials=8, seed=0
        )
        assert points[-1].success_rate >= points[0].success_rate
        assert points[-1].success_rate >= 0.75

    def test_bits_grow_with_budget(self):
        points = budget_success_curve(
            MU, budgets=[4, 64], trials=4, seed=1
        )
        assert points[1].mean_bits > points[0].mean_bits

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            budget_success_curve(MU, [1], trials=0)

"""Tests for repro.patterns: catalog, mask matcher, planting, reference.

The differential suites pin the rows-native monomorphism engine against
networkx's VF2 matcher (the preserved reference) over random patterns
and hosts: found/not-found must agree everywhere, and every copy the
mask engine reports must be a certified monomorphism image.  VF2's own
copies are validated too, but never compared image-for-image — only the
mask engine promises canonical-first output.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import gnd
from repro.graphs.graph import Graph
from repro.patterns import (
    DEFAULT_CATALOG,
    FIVE_CYCLE,
    FOUR_CLIQUE,
    FOUR_CYCLE,
    TRIANGLE,
    SubgraphPattern,
    clique,
    cycle,
    find_copy,
    find_copy_among,
    find_copy_in_rows,
    from_edges,
    incidence_c4_free,
    is_copy_in_rows,
    path,
    planted_disjoint_subgraphs,
    planted_mixed_patterns,
    star,
    subgraph_free_by_removal,
)
from repro.patterns.reference import networkx_available

needs_networkx = pytest.mark.skipif(
    not networkx_available(), reason="optional reference dep networkx missing"
)


def rows_of(n: int, edges) -> list[int]:
    rows = [0] * n
    for u, v in edges:
        rows[u] |= 1 << v
        rows[v] |= 1 << u
    return rows


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
class TestCatalog:
    def test_constructors_shapes(self):
        assert clique(4).num_edges == 6
        assert cycle(5).num_edges == 5
        assert path(4).num_edges == 3
        assert star(3).num_edges == 3
        assert star(3).num_vertices == 4
        assert from_edges("vee", [(0, 1), (1, 2)]).num_vertices == 3

    def test_builtin_names(self):
        assert TRIANGLE.name == "K3"
        assert FOUR_CLIQUE.name == "K4"
        assert FOUR_CYCLE.name == "C4"
        assert FIVE_CYCLE.name == "C5"

    def test_automorphism_counts(self):
        # Known orders: Aut(K_h) = h!, Aut(C_h) = 2h (dihedral),
        # Aut(P_h) = 2, Aut(K_{1,k}) = k!.
        assert TRIANGLE.automorphism_count == 6
        assert FOUR_CLIQUE.automorphism_count == 24
        assert FOUR_CYCLE.automorphism_count == 8
        assert FIVE_CYCLE.automorphism_count == 10
        assert path(4).automorphism_count == 2
        assert star(3).automorphism_count == 6

    def test_density(self):
        assert FOUR_CLIQUE.density == 1.0
        assert FOUR_CYCLE.density == pytest.approx(4 / 6)
        assert path(5).density == pytest.approx(4 / 10)

    def test_edges_canonicalized_and_sorted(self):
        scrambled = SubgraphPattern("K3", 3, ((2, 1), (1, 0), (2, 0)))
        assert scrambled == TRIANGLE
        assert scrambled.edges == ((0, 1), (0, 2), (1, 2))

    def test_invalid_edge_rejected(self):
        with pytest.raises(ValueError):
            SubgraphPattern("bad", 3, ((0, 3),))
        with pytest.raises(ValueError):
            SubgraphPattern("loop", 3, ((1, 1),))

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            SubgraphPattern("empty", 3, ())

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError):
            SubgraphPattern("dup", 2, ((0, 1), (1, 0)))

    def test_disconnected_rejected(self):
        # Two disjoint edges: one removal wounds a copy without killing a
        # connected piece — the counting argument the tester relies on
        # breaks, so construction must refuse.
        with pytest.raises(ValueError, match="disconnected"):
            SubgraphPattern("2K2", 4, ((0, 1), (2, 3)))

    def test_isolated_vertex_rejected(self):
        with pytest.raises(ValueError, match="disconnected"):
            SubgraphPattern("iso", 3, ((0, 1),))

    def test_constructor_bounds(self):
        with pytest.raises(ValueError):
            clique(1)
        with pytest.raises(ValueError):
            cycle(2)
        with pytest.raises(ValueError):
            path(1)
        with pytest.raises(ValueError):
            star(0)
        with pytest.raises(ValueError):
            from_edges("none", [])

    def test_matching_order_connectivity_respecting(self):
        for pattern in DEFAULT_CATALOG + (clique(5), path(6), star(5)):
            order = pattern.matching_order
            assert sorted(order) == list(range(pattern.num_vertices))
            placed = {order[0]}
            for v in order[1:]:
                assert any(
                    pattern.rows[v] >> u & 1 for u in placed
                ), f"{pattern.name}: {v} placed with no earlier neighbour"
                placed.add(v)

    def test_rows_symmetric(self):
        for pattern in DEFAULT_CATALOG:
            for u, v in pattern.edges:
                assert pattern.rows[u] >> v & 1
                assert pattern.rows[v] >> u & 1

    def test_pattern_picklable_with_cached_metadata(self):
        pattern = cycle(5)
        _ = pattern.rows, pattern.matching_order, pattern.automorphism_count
        clone = pickle.loads(pickle.dumps(pattern))
        assert clone == pattern
        assert clone.matching_order == pattern.matching_order


# ----------------------------------------------------------------------
# Matcher
# ----------------------------------------------------------------------
class TestMatcher:
    def test_finds_triangle(self):
        copy = find_copy_among([(0, 1), (1, 2), (0, 2)], TRIANGLE)
        assert copy is not None
        assert set(copy) == {0, 1, 2}

    def test_monomorphic_not_induced(self):
        # K4 contains C4 as a (non-induced) subgraph: must be found.
        k4_edges = [(u, v) for u in range(4) for v in range(u + 1, 4)]
        assert find_copy_among(k4_edges, FOUR_CYCLE) is not None

    def test_none_when_absent(self):
        assert find_copy_among([(0, 1), (1, 2)], TRIANGLE) is None

    def test_pattern_larger_than_host(self):
        host = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert find_copy(host, FOUR_CLIQUE) is None
        assert find_copy_in_rows([3, 3], TRIANGLE) is None

    def test_empty_host(self):
        assert find_copy_in_rows([], TRIANGLE) is None
        assert find_copy_in_rows([0] * 8, TRIANGLE) is None

    def test_single_edge_pattern(self):
        p2 = path(2)
        assert find_copy_among([(2, 3), (0, 5)], p2) == (0, 5)
        assert find_copy_among([(7, 4)], p2) == (4, 7)
        assert find_copy_among([], p2, n=4) is None

    def test_canonical_first_k4_copy(self):
        # Two K4s; the canonical-first copy is the ascending one on the
        # lower vertex block regardless of insertion order.
        blocks = [(10, 11, 12, 13), (1, 3, 5, 7)]
        edges = [
            (block[a], block[b])
            for block in blocks
            for a in range(4)
            for b in range(a + 1, 4)
        ]
        for shuffle_seed in range(3):
            shuffled = edges[:]
            random.Random(shuffle_seed).shuffle(shuffled)
            assert find_copy_among(shuffled, FOUR_CLIQUE, n=14) == (1, 3, 5, 7)

    def test_canonical_first_c4_copy_deterministic(self):
        # C4 has 8 automorphisms; the engine must still report one fixed
        # image, a pure function of the edge set.
        host = Graph(8, [(1, 2), (2, 6), (6, 4), (4, 1), (0, 7)])
        expected = find_copy(host, FOUR_CYCLE)
        assert expected is not None
        assert is_copy_in_rows(host.adjacency_rows(), FOUR_CYCLE, expected)
        for _ in range(5):
            assert find_copy(host, FOUR_CYCLE) == expected
        rebuilt = Graph(8, list(reversed(sorted(host.edges()))))
        assert find_copy(rebuilt, FOUR_CYCLE) == expected

    def test_star_needs_degree(self):
        # K_{1,3} needs a degree-3 centre; a path has none.
        path_edges = [(i, i + 1) for i in range(5)]
        assert find_copy_among(path_edges, star(3)) is None
        assert find_copy_among(path_edges + [(1, 4)], star(3)) is not None

    def test_path_contains_no_cycles(self):
        path_edges = [(i, i + 1) for i in range(10)]
        for pattern in (TRIANGLE, FOUR_CYCLE, FIVE_CYCLE):
            assert find_copy_among(path_edges, pattern) is None

    def test_image_is_in_pattern_vertex_order(self):
        # P3 = 0-1-2: image[1] must be the middle vertex.
        copy = find_copy_among([(4, 9), (9, 6)], path(3))
        assert copy is not None
        assert copy[1] == 9

    def test_find_copy_among_duplicates_collapse(self):
        edges = [(0, 1), (1, 0), (1, 2), (0, 2), (2, 1)]
        assert find_copy_among(edges, TRIANGLE) == (0, 1, 2)

    def test_is_copy_in_rows_validator(self):
        rows = rows_of(4, [(0, 1), (1, 2), (0, 2)])
        assert is_copy_in_rows(rows, TRIANGLE, (0, 1, 2))
        assert not is_copy_in_rows(rows, TRIANGLE, (0, 1, 1))   # not injective
        assert not is_copy_in_rows(rows, TRIANGLE, (0, 1, 3))   # missing edge
        assert not is_copy_in_rows(rows, TRIANGLE, (0, 1))      # wrong arity
        assert not is_copy_in_rows(rows, TRIANGLE, (0, 1, 9))   # out of range


# ----------------------------------------------------------------------
# Differential vs networkx VF2 (the preserved reference)
# ----------------------------------------------------------------------
def connected_patterns() -> st.SearchStrategy[SubgraphPattern]:
    """Random connected H on 2..5 vertices: spanning tree + extras."""

    @st.composite
    def build(draw) -> SubgraphPattern:
        h = draw(st.integers(min_value=2, max_value=5))
        tree = [
            (draw(st.integers(min_value=0, max_value=v - 1)), v)
            for v in range(1, h)
        ]
        pool = [
            (u, v)
            for u in range(h)
            for v in range(u + 1, h)
            if (u, v) not in tree
        ]
        extras = draw(st.lists(st.sampled_from(pool), unique=True)
                      ) if pool else []
        return from_edges("H", tree + extras, num_vertices=h)

    return build()


def host_edge_sets() -> st.SearchStrategy[tuple[int, list]]:
    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=2, max_value=13))
        pool = [(u, v) for u in range(n) for v in range(u + 1, n)]
        edges = draw(st.lists(st.sampled_from(pool), unique=True))
        return n, edges

    return build()


@needs_networkx
class TestDifferentialVsVF2:
    @given(host_edge_sets(), st.sampled_from(DEFAULT_CATALOG))
    @settings(max_examples=120, deadline=None)
    def test_catalog_patterns_agree(self, host, pattern):
        from repro.patterns.reference import find_copy_among_reference

        n, edges = host
        mask = find_copy_among(edges, pattern, n=n)
        reference = find_copy_among_reference(edges, pattern)
        assert (mask is None) == (reference is None)
        if mask is not None:
            rows = rows_of(n, edges)
            assert is_copy_in_rows(rows, pattern, mask)
            assert is_copy_in_rows(rows, pattern, reference)

    @given(host_edge_sets(), connected_patterns())
    @settings(max_examples=120, deadline=None)
    def test_random_patterns_agree(self, host, pattern):
        from repro.patterns.reference import find_copy_among_reference

        n, edges = host
        mask = find_copy_among(edges, pattern, n=n)
        reference = find_copy_among_reference(edges, pattern)
        assert (mask is None) == (reference is None)
        if mask is not None:
            assert is_copy_in_rows(rows_of(n, edges), pattern, mask)

    @given(host_edge_sets(), st.sampled_from(DEFAULT_CATALOG))
    @settings(max_examples=60, deadline=None)
    def test_rows_reference_seam_agrees(self, host, pattern):
        from repro.patterns.reference import find_copy_in_rows_reference

        n, edges = host
        rows = rows_of(n, edges)
        mask = find_copy_in_rows(rows, pattern)
        seam = find_copy_in_rows_reference(rows, pattern)
        assert (mask is None) == (seam is None)


# ----------------------------------------------------------------------
# Planting
# ----------------------------------------------------------------------
def reference_planted(n, pattern, copies, seed, background_degree):
    """The historical per-edge construction, kept as the byte-identity
    reference for the bulk-row rewrite."""
    rng = random.Random(seed)
    vertices = list(range(n))
    rng.shuffle(vertices)
    graph = (
        gnd(n, background_degree, seed=seed + 1)
        if background_degree > 0
        else Graph(n)
    )
    h = pattern.num_vertices
    planted = []
    for index in range(copies):
        image = tuple(vertices[index * h: (index + 1) * h])
        for u, v in pattern.edges:
            graph.add_edge(image[u], image[v])
        planted.append(image)
    return graph, tuple(planted)


class TestPlanting:
    @pytest.mark.parametrize("pattern", [FOUR_CLIQUE, FOUR_CYCLE, star(3)])
    @pytest.mark.parametrize("background", [0.0, 2.0])
    def test_bulk_rows_byte_identical_to_per_edge(self, pattern, background):
        for seed in (0, 3, 11):
            instance = planted_disjoint_subgraphs(
                120, pattern, 8, seed=seed, background_degree=background
            )
            expected_graph, expected_planted = reference_planted(
                120, pattern, 8, seed, background
            )
            assert instance.planted_copies == expected_planted
            assert instance.graph == expected_graph
            assert instance.graph.adjacency_rows() == \
                expected_graph.adjacency_rows()
            assert instance.graph.num_edges == expected_graph.num_edges

    def test_copies_planted_and_disjoint(self):
        instance = planted_disjoint_subgraphs(200, FIVE_CYCLE, 12, seed=2)
        seen: set[int] = set()
        for image in instance.planted_copies:
            assert not (set(image) & seen)
            seen.update(image)
            for u, v in FIVE_CYCLE.edges:
                assert instance.graph.has_edge(image[u], image[v])

    def test_too_many_copies_rejected(self):
        with pytest.raises(ValueError):
            planted_disjoint_subgraphs(10, FOUR_CLIQUE, 3)

    def test_certificate(self):
        instance = planted_disjoint_subgraphs(100, FOUR_CYCLE, 5, seed=3)
        assert instance.epsilon_certified == pytest.approx(5 / 20)

    def test_mixed_patterns_disjoint_blocks(self):
        mixed = planted_mixed_patterns(
            300, [(FOUR_CLIQUE, 5), (FIVE_CYCLE, 6), (star(3), 4)], seed=4
        )
        seen: set[int] = set()
        for pattern, images in mixed.placements:
            assert len(images) == {"K4": 5, "C5": 6, "K1,3": 4}[pattern.name]
            for image in images:
                assert not (set(image) & seen)
                seen.update(image)
                for u, v in pattern.edges:
                    assert mixed.graph.has_edge(image[u], image[v])

    def test_mixed_patterns_accessors(self):
        mixed = planted_mixed_patterns(
            200, [(FOUR_CYCLE, 5), (TRIANGLE, 7)], seed=5
        )
        assert len(mixed.copies_of(FOUR_CYCLE)) == 5
        assert mixed.copies_of(FIVE_CYCLE) == ()
        assert mixed.epsilon_certified(TRIANGLE) == pytest.approx(
            7 / mixed.graph.num_edges
        )

    def test_mixed_patterns_overflow_rejected(self):
        with pytest.raises(ValueError):
            planted_mixed_patterns(20, [(FOUR_CLIQUE, 3), (FIVE_CYCLE, 2)])

    def test_removal_exactly_kills_disjoint_copies(self):
        # Vertex-disjoint copies, no background: one deletion per copy.
        instance = planted_disjoint_subgraphs(80, FOUR_CYCLE, 7, seed=6)
        free, removed = subgraph_free_by_removal(
            instance.graph, FOUR_CYCLE
        )
        assert removed == 7
        assert find_copy(free, FOUR_CYCLE) is None
        # The original graph is untouched.
        assert find_copy(instance.graph, FOUR_CYCLE) is not None

    def test_removal_sandwiches_distance(self):
        instance = planted_disjoint_subgraphs(
            90, TRIANGLE, 9, seed=7, background_degree=2.0
        )
        free, removed = subgraph_free_by_removal(instance.graph, TRIANGLE)
        assert removed >= 9  # >= the certified lower bound
        assert find_copy(free, TRIANGLE) is None

    def test_removal_deterministic(self):
        graph = gnd(60, 4.0, seed=8)
        first = subgraph_free_by_removal(graph, TRIANGLE)
        second = subgraph_free_by_removal(graph, TRIANGLE)
        assert first[1] == second[1]
        assert first[0] == second[0]


class TestIncidenceC4Free:
    def test_structure(self):
        q = 3
        graph = incidence_c4_free(q)
        count = q * q + q + 1
        assert graph.n == 2 * count
        assert all(graph.degree(v) == q + 1 for v in range(graph.n))
        assert graph.num_edges == count * (q + 1)

    @pytest.mark.parametrize("q", [2, 3, 5])
    def test_c4_free(self, q):
        graph = incidence_c4_free(q)
        assert find_copy(graph, FOUR_CYCLE) is None
        # Bipartite and girth 6: no triangles either, but C6 exists.
        assert find_copy(graph, TRIANGLE) is None
        assert find_copy(graph, cycle(6)) is not None

    @needs_networkx
    def test_c4_free_confirmed_by_reference(self):
        from repro.patterns.reference import find_copy_among_reference

        graph = incidence_c4_free(3)
        assert find_copy_among_reference(
            sorted(graph.edges()), FOUR_CYCLE
        ) is None

    def test_non_prime_rejected(self):
        for bad in (1, 4, 6, 9):
            with pytest.raises(ValueError):
                incidence_c4_free(bad)

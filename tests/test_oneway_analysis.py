"""Tests for the Theorem 4.7 one-way transcript analysis."""

import pytest

from repro.lowerbounds.covered import analyze_player, truncation_message
from repro.lowerbounds.oneway_analysis import (
    analyze_transcript,
    coverage_bound_rhs,
    delta_plus_sum,
    expected_transcript_stats,
)

PART = 2
PRIOR = 0.35
U_PART = list(range(PART))
ALICE_UNIVERSE = [(u, v1) for u in U_PART for v1 in range(PART)]
BOB_UNIVERSE = [(u, v2) for u in U_PART for v2 in range(PART)]
PAIRS = [(v1, v2) for v1 in range(PART) for v2 in range(PART)]


def analyses(budget: int):
    alice = analyze_player(ALICE_UNIVERSE, PRIOR, truncation_message(budget))
    bob = analyze_player(BOB_UNIVERSE, PRIOR, truncation_message(budget))
    return alice, bob


class TestDeltaPlus:
    def test_zero_budget_zero_spend(self):
        alice, _ = analyses(0)
        (message,) = alice.messages()
        assert delta_plus_sum(alice, message) == 0.0

    def test_full_budget_spend_counts_revealed_edges(self):
        alice, _ = analyses(4)
        message = ((0, 0), (1, 1))
        # Revealed edges have posterior 1 -> Δ⁺ = 1 - 2·0.35 = 0.3 each;
        # absent edges have posterior 0 -> clipped to 0.
        assert delta_plus_sum(alice, message) == pytest.approx(0.6)

    def test_non_negative(self):
        alice, _ = analyses(2)
        for message in alice.message_probabilities:
            assert delta_plus_sum(alice, message) >= 0.0


class TestAnalyzeTranscript:
    def test_probability_is_product(self):
        alice, bob = analyses(1)
        m1 = next(iter(alice.message_probabilities))
        m2 = next(iter(bob.message_probabilities))
        stats = analyze_transcript(alice, bob, m1, m2, PAIRS, U_PART)
        assert stats.probability == pytest.approx(
            alice.message_probabilities[m1] * bob.message_probabilities[m2]
        )

    def test_zero_budget_stats(self):
        alice, bob = analyses(0)
        (m1,) = alice.messages()
        (m2,) = bob.messages()
        stats = analyze_transcript(alice, bob, m1, m2, PAIRS, U_PART)
        assert stats.covered_count == 0
        assert stats.delta_plus_total == 0.0
        base = len(PAIRS) * (1 - (1 - PRIOR ** 2) ** PART)
        assert stats.cover_mass == pytest.approx(base)

    def test_full_budget_rich_transcript(self):
        alice, bob = analyses(4)
        m1 = ((0, 0), (1, 0))  # Alice: vee arms at both u's toward v1=0
        m2 = ((0, 0), (1, 0))  # Bob: same toward v2=0
        stats = analyze_transcript(alice, bob, m1, m2, PAIRS, U_PART)
        assert stats.covered_count == 1  # (v1=0, v2=0), with certainty
        assert stats.cover_mass == pytest.approx(1.0)


class TestExpectedStats:
    def test_cover_mass_invariant_in_budget(self):
        """Tower rule: E[cover mass] must not depend on the budget."""
        masses = []
        for budget in (0, 2, 4):
            alice, bob = analyses(budget)
            _, mass, _ = expected_transcript_stats(
                alice, bob, PAIRS, U_PART
            )
            masses.append(mass)
        assert masses[0] == pytest.approx(masses[1], abs=1e-9)
        assert masses[1] == pytest.approx(masses[2], abs=1e-9)

    def test_covered_count_grows_with_budget(self):
        counts = []
        for budget in (0, 1, 4):
            alice, bob = analyses(budget)
            _, _, count = expected_transcript_stats(
                alice, bob, PAIRS, U_PART
            )
            counts.append(count)
        assert counts[0] == 0.0
        assert counts[0] < counts[1] < counts[2]

    def test_delta_spend_grows_with_budget(self):
        deltas = []
        for budget in (0, 1, 4):
            alice, bob = analyses(budget)
            delta, _, _ = expected_transcript_stats(
                alice, bob, PAIRS, U_PART
            )
            deltas.append(delta)
        assert deltas[0] == 0.0
        assert deltas[-1] > deltas[1] > 0.0


class TestCoverageBound:
    @pytest.mark.parametrize("budget", [0, 1, 2, 4])
    def test_cover_mass_within_bound_every_transcript(self, budget):
        """The union-bound coverage inequality is a theorem: it must hold
        for every transcript of every protocol."""
        alice, bob = analyses(budget)
        for m1 in alice.message_probabilities:
            for m2 in bob.message_probabilities:
                stats = analyze_transcript(
                    alice, bob, m1, m2, PAIRS, U_PART
                )
                bound = coverage_bound_rhs(
                    stats.delta_plus_alice, stats.delta_plus_bob,
                    PRIOR, PART, PART, PART,
                )
                assert stats.cover_mass <= bound + 1e-9, (
                    f"budget={budget} m1={m1} m2={m2}: "
                    f"{stats.cover_mass} > {bound}"
                )

    @pytest.mark.parametrize("prior", [0.1, 0.25, 0.45])
    def test_bound_holds_across_priors(self, prior):
        alice = analyze_player(ALICE_UNIVERSE, prior, truncation_message(2))
        bob = analyze_player(BOB_UNIVERSE, prior, truncation_message(2))
        for m1 in alice.message_probabilities:
            for m2 in bob.message_probabilities:
                stats = analyze_transcript(
                    alice, bob, m1, m2, PAIRS, U_PART
                )
                bound = coverage_bound_rhs(
                    stats.delta_plus_alice, stats.delta_plus_bob,
                    prior, PART, PART, PART,
                )
                assert stats.cover_mass <= bound + 1e-9

    def test_quadratic_term_dominates_for_large_delta(self):
        small = coverage_bound_rhs(0.5, 0.5, 0.01, 10, 10, 10)
        large = coverage_bound_rhs(5.0, 5.0, 0.01, 10, 10, 10)
        # 10x delta -> ~100x leading term.
        assert large / small > 30

    def test_rhs_monotone(self):
        assert coverage_bound_rhs(
            2.0, 2.0, PRIOR, PART, PART, PART
        ) > coverage_bound_rhs(1.0, 1.0, PRIOR, PART, PART, PART)

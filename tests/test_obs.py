"""Tests for the observability subsystem (PR 10, ``repro.obs``).

The load-bearing contract: tracing and metrics never touch a random
number generator, so `TrialResult` records are byte-identical with
observability on or off — across serial and parallel executors (fork
and spawn) and across the batched and per-trial engines.  The per-trial
*profile* is the one opt-in surface that deliberately changes the
record, so it lives behind its own flag.

Also covered: `MetricsRegistry` snapshot/merge algebra (merge must be
associative so worker-shipping order cannot change aggregates), trace
JSONL round-trips through `load_trace`, the `summarize` report's
self-time partition, the logging bridge, and `InstanceCache.reset`.
"""

import json
import logging
import pickle

import pytest

import spawn_helpers
from repro.analysis.experiments import run_sweep
from repro.graphs.generators import far_instance
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.summarize import load_trace, main as summarize_main, summarize
from repro.obs.trace import TraceRecorder
from repro.runtime import InstanceCache, ParallelExecutor

GRID = [(120, 4.0, 3), (200, 4.0, 3)]


@pytest.fixture(autouse=True)
def _isolate_workers_env(monkeypatch):
    """An ambient REPRO_WORKERS must not reroute the executor-sensitive
    assertions below."""
    monkeypatch.delenv("REPRO_WORKERS", raising=False)


@pytest.fixture(autouse=True)
def _no_leaked_globals():
    """Every test must restore the module-global recorder/registry —
    a leak here would silently couple unrelated tests."""
    yield
    assert obs_metrics.get_metrics() is None
    assert obs_trace.get_recorder() is None


def sweep(**kwargs):
    return run_sweep(
        spawn_helpers.spawn_protocol, spawn_helpers.spawn_instance,
        GRID, trials=2, seed=9, **kwargs,
    )


# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 2)
        registry.gauge("g", 7.0)
        registry.observe("h", 0.25)
        registry.observe("h", 0.75)
        assert registry.counters["a"] == 3
        assert registry.gauges["g"] == 7.0
        hist = registry.histograms["h"]
        assert hist["count"] == 2
        assert hist["sum"] == 1.0
        assert hist["min"] == 0.25
        assert hist["max"] == 0.75
        # 0.25 sits in [2^-3, 2^-2) -> exponent -1 of frexp is -2;
        # what matters is that the two land in distinct power-of-two
        # buckets and the counts are exact.
        assert sum(hist["buckets"].values()) == 2

    def test_zero_duration_lands_in_underflow_bucket(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.0)
        registry.observe("h", -1.0)
        assert registry.histograms["h"]["buckets"] == {"underflow": 2}

    def test_snapshot_is_json_faithful_and_roundtrips(self):
        registry = MetricsRegistry()
        registry.inc("c", 5)
        registry.gauge("g", 1.5)
        registry.observe("h", 0.1)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        rebuilt = MetricsRegistry.from_snapshot(snapshot)
        assert rebuilt.snapshot() == snapshot
        # The snapshot is a deep copy: mutating the registry afterwards
        # must not reach into it.
        registry.inc("c")
        registry.observe("h", 0.1)
        assert snapshot["counters"]["c"] == 5
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_merge_is_associative(self):
        def filled(seed_values):
            registry = MetricsRegistry()
            for i, value in enumerate(seed_values):
                registry.inc(f"c{i % 2}", value)
                registry.observe("h", value)
            return registry.snapshot()

        # Dyadic values: float addition is exact on them, so the
        # associativity claim is exact rather than within-epsilon.
        a = filled([0.125, 0.5, 2.0])
        b = filled([0.25, 8.0])
        c = filled([0.0625])

        left = MetricsRegistry.from_snapshot(a)
        left.merge(b)
        left.merge(c)

        bc = MetricsRegistry.from_snapshot(b)
        bc.merge(c)
        right = MetricsRegistry.from_snapshot(a)
        right.merge(bc)

        assert left.snapshot() == right.snapshot()

    def test_module_helpers_are_noops_without_registry(self):
        assert obs_metrics.get_metrics() is None
        obs_metrics.inc("nope")
        obs_metrics.gauge("nope", 1.0)
        obs_metrics.observe("nope", 0.5)
        with obs_metrics.timer("nope"):
            pass  # the shared null timer records nothing

    def test_ship_returns_deltas_and_resets(self):
        registry = MetricsRegistry()
        with obs_metrics.use_metrics(registry):
            obs_metrics.inc("x", 4)
            shipped = obs_metrics.ship()
            assert shipped["counters"]["x"] == 4
            assert registry.counters == {}  # reset after snapshot
            obs_metrics.inc("x", 1)
            obs_metrics.absorb(shipped)
        assert registry.counters["x"] == 5

    def test_absorb_none_is_noop(self):
        registry = MetricsRegistry()
        with obs_metrics.use_metrics(registry):
            obs_metrics.absorb(None)
        assert registry.counters == {}


# ----------------------------------------------------------------------
class TestTraceRecorder:
    def test_span_event_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            with recorder.span("outer", n=120) as outer:
                recorder.event("ping", value=1)
                with recorder.span("inner"):
                    pass
        records = load_trace(path)
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        events = [r for r in records if r["type"] == "event"]
        assert spans["outer"]["parent"] is None
        assert spans["outer"]["attrs"] == {"n": 120}
        assert spans["inner"]["parent"] == outer.span_id
        assert spans["outer"]["dur"] >= spans["inner"]["dur"] >= 0.0
        (ping,) = events
        assert ping["span"] == outer.span_id
        assert ping["attrs"] == {"value": 1}

    def test_exception_stamps_error_attr(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            with pytest.raises(RuntimeError):
                with recorder.span("doomed"):
                    raise RuntimeError("boom")
        (span,) = load_trace(path)
        assert span["attrs"]["error"] == "RuntimeError"

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            with recorder.span("kept"):
                pass
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "name": "torn')  # no newline
        records = load_trace(path)
        assert [r["name"] for r in records] == ["kept"]

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "not-a-trace.jsonl"
        path.write_text('{"type": "span", "name": "x"}\n')
        with pytest.raises(ValueError, match="missing header"):
            load_trace(path)

    def test_directory_loads_sibling_files(self, tmp_path):
        for name in ("trace.jsonl", "trace-p123.jsonl"):
            with TraceRecorder(tmp_path / name) as recorder:
                with recorder.span(name):
                    pass
        names = {r["name"] for r in load_trace(tmp_path)}
        assert names == {"trace.jsonl", "trace-p123.jsonl"}

    def test_disabled_tracing_uses_shared_null_span(self):
        assert obs_trace.get_recorder() is None
        assert obs_trace.span("x") is obs_trace.span("y")
        obs_trace.event("nope")  # must not raise

    def test_log_bridge_mirrors_warnings_into_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(path)
        with obs_trace.use_recorder(recorder):
            logging.getLogger("repro.test_obs").warning("bridged %d", 1)
            logging.getLogger("repro.test_obs").debug("below threshold")
        recorder.close()
        logs = [r for r in load_trace(path) if r["name"] == "log"]
        assert len(logs) == 1
        assert logs[0]["attrs"]["level"] == "WARNING"
        assert logs[0]["attrs"]["message"] == "bridged 1"
        # Detached with the recorder: no handler left behind.
        bridge_gone = all(
            not isinstance(h, obs_trace.TraceLogHandler)
            for h in logging.getLogger("repro").handlers
        )
        assert bridge_gone

    def test_far_instance_shortfall_reaches_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(path)
        with obs_trace.use_recorder(recorder):
            far_instance(90, 12.0, 0.5, seed=3)
        recorder.close()
        logs = [r for r in load_trace(path) if r["name"] == "log"]
        assert any("certifies only" in r["attrs"]["message"] for r in logs)


# ----------------------------------------------------------------------
class TestByteIdentity:
    """Records must not change when tracing/metrics are enabled."""

    def test_serial_batched(self, tmp_path):
        plain = sweep(workers=1)
        observed = sweep(workers=1, trace=tmp_path / "t.jsonl",
                         metrics=MetricsRegistry())
        assert pickle.dumps(observed.records) == pickle.dumps(plain.records)

    def test_serial_per_trial(self, tmp_path):
        plain = sweep(workers=1, batch=False)
        observed = sweep(workers=1, batch=False,
                         trace=tmp_path / "t.jsonl",
                         metrics=MetricsRegistry())
        assert pickle.dumps(observed.records) == pickle.dumps(plain.records)

    def test_parallel_fork(self, tmp_path):
        plain = sweep(workers=1)
        observed = sweep(
            executor=ParallelExecutor(workers=2, start_method="fork"),
            trace=tmp_path / "t.jsonl", metrics=MetricsRegistry(),
        )
        assert pickle.dumps(observed.records) == pickle.dumps(plain.records)

    def test_parallel_spawn(self, tmp_path):
        plain = sweep(workers=1)
        observed = sweep(
            executor=ParallelExecutor(workers=2, start_method="spawn"),
            trace=tmp_path / "t.jsonl", metrics=MetricsRegistry(),
        )
        assert pickle.dumps(observed.records) == pickle.dumps(plain.records)

    def test_worker_metrics_ship_home_exactly(self):
        """Fork workers inherit the driver registry; worker_sync plus
        delta shipping must keep the totals identical to a serial run."""
        serial = MetricsRegistry()
        sweep(workers=1, metrics=serial)
        parallel = MetricsRegistry()
        sweep(executor=ParallelExecutor(workers=2, start_method="fork"),
              metrics=parallel)
        trials = len(GRID) * 2
        assert serial.counters["trial.ok"] == trials
        assert parallel.counters["trial.ok"] == trials
        # Per-trial work counters are execution-placement invariant.
        for name in serial.counters:
            if name.startswith(("kernel.select.", "generator.path.")):
                assert parallel.counters.get(name) == serial.counters[name]


# ----------------------------------------------------------------------
class TestProfile:
    def test_profile_off_by_default(self):
        result = sweep(workers=1)
        assert all("profile" not in r.extras for r in result.records)

    def test_profile_attaches_phase_breakdown(self):
        result = sweep(workers=1, profile=True)
        for record in result.records:
            profile = record.extras["profile"]
            assert set(profile) >= {"build", "protocol"}
            assert all(v >= 0.0 for v in profile.values())

    def test_profile_survives_parallel_executors(self):
        result = sweep(
            executor=ParallelExecutor(workers=2, start_method="fork"),
            profile=True,
        )
        assert all("profile" in r.extras for r in result.records)


# ----------------------------------------------------------------------
class TestSummarize:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sweep(workers=1, trace=path, metrics=MetricsRegistry())
        return path

    def test_phase_self_times_partition_wall_clock(self, trace_path):
        records = load_trace(trace_path)
        report = summarize(records)
        assert "Phase breakdown (self time):" in report
        coverage_line = next(
            line for line in report.splitlines() if "Run wall clock" in line
        )
        covered = float(coverage_line.split("cover ")[1].rstrip("%)"))
        # Self time partitions the root span exactly; only clock-read
        # jitter and 1e-9 rounding can move the needle.
        assert 99.0 <= covered <= 101.0

    def test_metrics_sections_rendered(self, trace_path):
        report = summarize(load_trace(trace_path))
        assert "Backend mix:" in report
        assert "Generator paths:" in report
        assert f"Trials: ok={len(GRID) * 2:g}" in report

    def test_without_metrics_snapshot_degrades_gracefully(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sweep(workers=1, trace=path)
        report = summarize(load_trace(path))
        assert "no metrics snapshot" in report

    def test_cli_entrypoint(self, trace_path, capsys):
        assert summarize_main([str(trace_path)]) == 0
        assert "Phase breakdown" in capsys.readouterr().out
        assert summarize_main([]) == 2
        assert summarize_main(["no", "such", "args"]) == 2
        assert summarize_main([str(trace_path.parent / "absent.jsonl")]) == 1


# ----------------------------------------------------------------------
class TestCacheReset:
    def test_reset_zeroes_counters_keeps_entries(self):
        cache = InstanceCache()
        cache.get_or_build(("k", 1), lambda: "value")
        cache.get_or_build(("k", 1), lambda: "value")
        assert cache.stats()["hits"] == 1
        assert cache.stats()["builds"] == 1
        cache.reset()
        stats = cache.stats()
        assert stats["hits"] == stats["misses"] == stats["builds"] == 0
        assert stats["entries"] == 1  # the instance itself stays warm
        cache.get_or_build(("k", 1), lambda: "value")
        assert cache.stats()["hits"] == 1

    def test_clear_drops_entries_too(self):
        cache = InstanceCache()
        cache.get_or_build(("k", 1), lambda: "value")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 0

"""Tests for the information-theory toolkit (repro.lowerbounds.information)."""

import math

import numpy as np
import pytest

from repro.lowerbounds.information import (
    bernoulli_kl,
    binary_entropy,
    entropy,
    kl_divergence,
    lemma_4_3_holds,
    lemma_4_3_lower_bound,
    lemma_4_13_bound,
    mutual_information,
    mutual_information_from_joint,
    reported_edge_divergence,
    superadditivity_gap,
)


class TestEntropy:
    def test_uniform_two_outcomes(self):
        assert entropy({0: 0.5, 1: 0.5}) == pytest.approx(1.0)

    def test_deterministic_zero(self):
        assert entropy({0: 1.0}) == pytest.approx(0.0)

    def test_uniform_n(self):
        n = 8
        dist = {i: 1 / n for i in range(n)}
        assert entropy(dist) == pytest.approx(3.0)

    def test_sequence_input(self):
        assert entropy([0.25, 0.25, 0.25, 0.25]) == pytest.approx(2.0)

    def test_unnormalized_rejected(self):
        with pytest.raises(ValueError):
            entropy({0: 0.3, 1: 0.3})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            entropy({0: -0.5, 1: 1.5})

    def test_binary_entropy_symmetry(self):
        assert binary_entropy(0.3) == pytest.approx(binary_entropy(0.7))

    def test_binary_entropy_extremes(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.5) == pytest.approx(1.0)


class TestKl:
    def test_zero_when_equal(self):
        dist = {0: 0.4, 1: 0.6}
        assert kl_divergence(dist, dist) == pytest.approx(0.0)

    def test_non_negative(self):
        mu = {0: 0.9, 1: 0.1}
        eta = {0: 0.5, 1: 0.5}
        assert kl_divergence(mu, eta) > 0

    def test_asymmetric(self):
        mu = {0: 0.9, 1: 0.1}
        eta = {0: 0.5, 1: 0.5}
        assert kl_divergence(mu, eta) != pytest.approx(
            kl_divergence(eta, mu)
        )

    def test_infinite_on_support_mismatch(self):
        assert kl_divergence({0: 1.0}, {1: 1.0}) == math.inf

    def test_bernoulli_kl_matches_general(self):
        assert bernoulli_kl(0.8, 0.3) == pytest.approx(
            kl_divergence({1: 0.8, 0: 0.2}, {1: 0.3, 0: 0.7})
        )

    def test_bernoulli_kl_input_validation(self):
        with pytest.raises(ValueError):
            bernoulli_kl(1.5, 0.5)


class TestMutualInformation:
    def test_independent_is_zero(self):
        joint = np.outer([0.3, 0.7], [0.4, 0.6])
        assert mutual_information_from_joint(joint) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_perfectly_correlated(self):
        joint = np.array([[0.5, 0.0], [0.0, 0.5]])
        assert mutual_information_from_joint(joint) == pytest.approx(1.0)

    def test_bounded_by_entropy(self):
        joint = np.array([[0.3, 0.1], [0.2, 0.4]])
        mi = mutual_information_from_joint(joint)
        h_x = entropy(list(joint.sum(axis=1)))
        assert 0 <= mi <= h_x

    def test_sparse_mapping_form(self):
        joint = {(0, 0): 0.5, (1, 1): 0.5}
        assert mutual_information(joint) == pytest.approx(1.0)

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            mutual_information_from_joint(np.ones(4) / 4)

    def test_normalization_validated(self):
        with pytest.raises(ValueError):
            mutual_information_from_joint(np.ones((2, 2)))


class TestSuperadditivity:
    def test_gap_non_negative_for_independent_coordinates(self):
        # X1, X2 iid bits; Y = (X1, X2): the gap is exactly 0 here.
        joint = {}
        for x1 in (0, 1):
            for x2 in (0, 1):
                joint[((x1, x2), (x1, x2))] = 0.25
        assert superadditivity_gap(joint) >= -1e-9

    def test_gap_positive_for_xor(self):
        # Y = X1 xor X2: I(X;Y)=1 but each I(X_i;Y)=0 -> gap 1 (Lemma 4.2).
        joint = {}
        for x1 in (0, 1):
            for x2 in (0, 1):
                joint[((x1, x2), x1 ^ x2)] = 0.25
        assert superadditivity_gap(joint) == pytest.approx(1.0)

    def test_empty_joint(self):
        assert superadditivity_gap({}) == 0.0


class TestLemma43:
    def test_holds_across_grid(self):
        for p in (0.01, 0.1, 0.3, 0.49):
            for q in (0.01, 0.2, 0.5, 0.9, 0.99):
                assert lemma_4_3_holds(q, p)

    def test_bound_formula(self):
        assert lemma_4_3_lower_bound(0.5, 0.1) == pytest.approx(0.3)

    def test_p_range_enforced(self):
        with pytest.raises(ValueError):
            lemma_4_3_holds(0.5, 0.6)

    def test_tight_region_q_equals_2p(self):
        # At q = 2p the bound is 0 and divergence is non-negative: tight.
        for p in (0.05, 0.2):
            assert bernoulli_kl(2 * p, p) >= 0


class TestLemma413:
    def test_reported_edge_expensive(self):
        # D(9/10 || gamma/sqrt(n)) >= (9/40) log n for small gamma, large n.
        for n in (256, 4096, 65536):
            divergence = reported_edge_divergence(n, gamma=0.4)
            assert divergence >= lemma_4_13_bound(n)

    def test_bound_grows_with_n(self):
        assert lemma_4_13_bound(4096) > lemma_4_13_bound(256)

    def test_prior_above_posterior_rejected(self):
        with pytest.raises(ValueError):
            reported_edge_divergence(4, gamma=10.0)

"""Shared env setup for tests that spawn Python subprocesses.

Child processes must resolve ``repro`` exactly as the test process
does, whether it came from the packaged install or pyproject's
``pythonpath`` (which only applies inside pytest, not to children).
"""

import os
import pathlib

import repro


def child_env() -> dict[str, str]:
    """os.environ with repro's parent dir prepended to PYTHONPATH."""
    repro_parent = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [repro_parent]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env

"""Smoke tests: every example script runs clean end to end.

Examples are documentation; these tests keep them from rotting.  Each runs
in a subprocess with the repository's interpreter and must exit 0 with the
expected landmark strings on stdout.
"""

import pathlib
import subprocess
import sys

import pytest

from env_helpers import child_env

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

_CHILD_ENV = child_env()

CASES = [
    ("quickstart.py", "one-sided error check"),
    ("building_blocks_tour.py", "approx_degree"),
    ("degree_oblivious_tour.py", "adversarial skew"),
    ("lower_bound_constructions.py", "symmetrization identity"),
    ("streaming_pipeline.py", "space/success trade-off"),
    ("subgraph_freeness.py", "one-sided error on H-free controls"),
]


@pytest.mark.parametrize(
    "script,landmark", CASES, ids=[name for name, _ in CASES]
)
def test_example_runs(script, landmark):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=600, env=_CHILD_ENV,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stderr[-2000:]}"
    )
    assert landmark in result.stdout, (
        f"{script} output missing landmark {landmark!r}"
    )

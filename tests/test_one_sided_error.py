"""One-sided error: no protocol ever reports a triangle on a triangle-free
input — the paper's blanket guarantee for every Section 3 algorithm.

These tests sweep protocols x triangle-free input families x seeds and
require *zero* false positives, plus witness-validity checks on far inputs
(any reported triangle must exist in the graph, even when the farness
promise is broken).
"""

import math

import pytest

from repro.core.degree_approx import DegreeApproxParams
from repro.core.exact_baseline import exact_triangle_detection
from repro.core.oblivious import ObliviousParams, find_triangle_sim_oblivious
from repro.core.simultaneous_high import SimHighParams, find_triangle_sim_high
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.core.unrestricted import (
    UnrestrictedParams,
    find_triangle_unrestricted,
)
from repro.graphs.generators import (
    bipartite_triangle_free,
    gnd,
    triangle_free_degree_spread,
)
from repro.graphs.graph import Graph
from repro.graphs.partition import (
    partition_disjoint,
    partition_with_duplication,
)
from repro.graphs.triangles import is_triangle_free


def triangle_free_inputs():
    yield "bipartite", bipartite_triangle_free(300, 6.0, seed=1)
    yield "spread", triangle_free_degree_spread(300, 6.0, 60, seed=2)
    yield "path", Graph(100, [(i, i + 1) for i in range(99)])
    yield "star", Graph(100, [(0, i) for i in range(1, 100)])
    yield "empty", Graph(50)


UNRESTRICTED_FAST = UnrestrictedParams(
    epsilon=0.3,
    delta=0.2,
    samples_per_bucket=12,
    max_candidates=6,
    degree_params=DegreeApproxParams(
        alpha=math.sqrt(3.0), tau=0.2, experiments_override=6
    ),
)


def protocols():
    yield "sim-low", lambda partition, seed: find_triangle_sim_low(
        partition, SimLowParams(epsilon=0.3, delta=0.2), seed=seed
    )
    yield "sim-high", lambda partition, seed: find_triangle_sim_high(
        partition, SimHighParams(epsilon=0.3, delta=0.2), seed=seed
    )
    yield "oblivious", lambda partition, seed: find_triangle_sim_oblivious(
        partition, ObliviousParams(epsilon=0.3, delta=0.2), seed=seed
    )
    yield "unrestricted", lambda partition, seed: (
        find_triangle_unrestricted(partition, UNRESTRICTED_FAST, seed=seed)
    )
    yield "exact", lambda partition, seed: exact_triangle_detection(
        partition
    )


@pytest.mark.parametrize(
    "input_name,graph",
    list(triangle_free_inputs()),
    ids=[name for name, _ in triangle_free_inputs()],
)
@pytest.mark.parametrize(
    "protocol_name,protocol",
    list(protocols()),
    ids=[name for name, _ in protocols()],
)
def test_no_false_positives(input_name, graph, protocol_name, protocol):
    assert is_triangle_free(graph)
    for k, seed in ((2, 0), (4, 1)):
        partition = partition_disjoint(graph, k, seed=seed)
        result = protocol(partition, seed)
        assert not result.found, (
            f"{protocol_name} reported a triangle on triangle-free "
            f"{input_name} input (k={k}, seed={seed})"
        )
        assert result.triangle is None


@pytest.mark.parametrize(
    "protocol_name,protocol",
    list(protocols()),
    ids=[name for name, _ in protocols()],
)
def test_no_false_positives_under_duplication(protocol_name, protocol):
    graph = bipartite_triangle_free(200, 6.0, seed=3)
    partition = partition_with_duplication(
        graph, 4, seed=4, duplication_probability=0.6
    )
    for seed in range(3):
        assert not protocol(partition, seed).found


@pytest.mark.parametrize(
    "protocol_name,protocol",
    list(protocols()),
    ids=[name for name, _ in protocols()],
)
def test_witness_always_real_without_promise(protocol_name, protocol):
    """Even on inputs far from the promise (a random graph with few
    triangles), any reported triangle must genuinely exist."""
    graph = gnd(200, 4.0, seed=5)
    partition = partition_disjoint(graph, 3, seed=6)
    for seed in range(3):
        result = protocol(partition, seed)
        if result.found:
            a, b, c = result.triangle
            assert graph.has_edge(a, b)
            assert graph.has_edge(a, c)
            assert graph.has_edge(b, c)

"""Tests for the Lemma 4.17 degree-downscaling embedding."""

import math

import pytest

from repro.graphs.triangles import count_triangles
from repro.lowerbounds.embedding import (
    core_size_for_degree,
    embed_mu_for_degree,
    transferred_oneway_bound,
    transferred_simultaneous_bound,
)


class TestCoreSize:
    def test_formula(self):
        # n' = (d' n)^{1/(1+c)} with c = 1/2.
        n, d = 10_000, 4.0
        expected = (d * n) ** (2.0 / 3.0)
        assert core_size_for_degree(n, d) == pytest.approx(
            expected, abs=1.0
        )

    def test_never_exceeds_n(self):
        assert core_size_for_degree(100, 99.0) <= 100

    def test_minimum_three(self):
        assert core_size_for_degree(10, 0.001) >= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            core_size_for_degree(0, 1.0)
        with pytest.raises(ValueError):
            core_size_for_degree(100, 0.0)
        with pytest.raises(ValueError):
            core_size_for_degree(100, 1.0, core_exponent=1.5)

    def test_core_degree_yields_target(self):
        # Self-consistency: (n')^{3/2} / n should be ~ d'.
        n, d = 50_000, 2.0
        core = core_size_for_degree(n, d)
        assert core ** 1.5 / n == pytest.approx(d, rel=0.1)


class TestEmbedMu:
    def test_padded_size(self):
        instance = embed_mu_for_degree(5000, 2.0, gamma=1.0, seed=1)
        assert instance.graph.n == 5000

    def test_achieved_degree_near_target(self):
        instance = embed_mu_for_degree(8000, 2.0, gamma=1.5, seed=2)
        # gamma and rounding move the constant; the order must match.
        assert 0.2 * 2.0 <= instance.achieved_degree <= 5 * 2.0

    def test_core_has_sqrt_degree(self):
        instance = embed_mu_for_degree(8000, 2.0, gamma=1.5, seed=3)
        expected = math.sqrt(instance.core_size)
        assert 0.2 * expected <= instance.core_average_degree <= 2 * expected

    def test_triangles_preserved_from_core(self):
        instance = embed_mu_for_degree(3000, 2.0, gamma=1.5, seed=4)
        # The padded graph's triangles are exactly the core's (isolated
        # vertices add nothing).
        assert count_triangles(instance.graph) > 0


class TestTransferredBounds:
    def test_oneway_form(self):
        assert transferred_oneway_bound(100, 10.0) == pytest.approx(
            1000 ** (1 / 6)
        )

    def test_simultaneous_form(self):
        assert transferred_simultaneous_bound(100, 10.0) == pytest.approx(
            1000 ** (1 / 3)
        )

    def test_consistency_at_sqrt_n(self):
        # At d = sqrt(n): (nd)^{1/6} = n^{1/4} and (nd)^{1/3} = n^{1/2},
        # recovering the direct Section 4.2 bounds.
        n = 4096
        d = math.sqrt(n)
        assert transferred_oneway_bound(n, d) == pytest.approx(n ** 0.25)
        assert transferred_simultaneous_bound(n, d) == pytest.approx(
            n ** 0.5
        )

    def test_monotone_in_density(self):
        assert transferred_oneway_bound(1000, 8.0) > (
            transferred_oneway_bound(1000, 2.0)
        )

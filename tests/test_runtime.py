"""Tests for the parallel experiment runtime (repro.runtime).

The three guarantees the runtime makes:

(a) serial and parallel executors yield byte-identical TrialResult
    streams for the same sweep seed;
(b) seed derivation is stable across process boundaries;
(c) the instance cache is hit when two protocols share a grid point.
"""

from __future__ import annotations

import multiprocessing
import pickle
import subprocess
import sys

import pytest

import spawn_helpers

from repro.analysis.experiments import default_instance, run_sweep
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low
from repro.runtime import (
    InstanceCache,
    ParallelExecutor,
    SerialExecutor,
    TrialResult,
    TrialSpec,
    TrialTask,
    build_specs,
    default_executor,
    derive_seed,
    resolve_workers,
    run_trials,
)

GRID = [(200, 4.0, 3), (400, 4.0, 3)]


@pytest.fixture(autouse=True)
def _isolate_workers_env(monkeypatch):
    """An ambient REPRO_WORKERS must not reroute the executor-sensitive
    assertions below (cache counters live in the parent process only)."""
    monkeypatch.delenv("REPRO_WORKERS", raising=False)


def sim_low_protocol(partition, seed):
    return find_triangle_sim_low(
        partition, SimLowParams(epsilon=0.3, delta=0.2), seed=seed
    )


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(0, 1, 2) == derive_seed(0, 1, 2)

    def test_coordinates_distinguish(self):
        seeds = {
            derive_seed(s, p, t)
            for s in range(4) for p in range(4) for t in range(4)
        }
        assert len(seeds) == 64

    def test_stream_labels_split(self):
        assert derive_seed(1, 2, 3, "a") != derive_seed(1, 2, 3, "b")

    def test_non_negative_64bit(self):
        seed = derive_seed(12345, 999, 999)
        assert 0 <= seed < 2 ** 63

    def test_stable_across_process_boundaries(self):
        """The derivation must not depend on interpreter hash state."""
        import json
        import os
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parent.parent)
        coords = [[0, 0, 0], [7, 3, 1], [104729, 12, 4]]
        script = (
            "import json; from repro.runtime import derive_seed; "
            f"print(json.dumps([derive_seed(*c) for c in {coords!r}]))"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src
        # A different hash seed would change the output if the derivation
        # leaned on hash() anywhere.
        env["PYTHONHASHSEED"] = "12345"
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        )
        child = json.loads(out.stdout.strip())
        assert child == [derive_seed(*c) for c in coords]


class TestSpecs:
    def test_build_specs_shape_and_order(self):
        specs = build_specs(GRID, trials=3, sweep_seed=5)
        assert len(specs) == 6
        assert [(s.point_index, s.trial_index) for s in specs] == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]
        assert specs[0].n == 200 and specs[3].n == 400

    def test_build_specs_validates_trials(self):
        with pytest.raises(ValueError):
            build_specs(GRID, trials=0, sweep_seed=0)

    def test_specs_pickle_roundtrip(self):
        specs = build_specs(GRID, trials=2, sweep_seed=1)
        assert pickle.loads(pickle.dumps(specs)) == specs


class TestExecutorIdentity:
    def test_serial_vs_parallel_byte_identical(self):
        """(a) the headline guarantee: records match byte for byte."""
        instance_fn = default_instance(epsilon=0.3, k=3)
        serial = run_sweep(
            sim_low_protocol, instance_fn, GRID, trials=3, seed=11,
            executor=SerialExecutor(),
        )
        parallel = run_sweep(
            sim_low_protocol, instance_fn, GRID, trials=3, seed=11,
            executor=ParallelExecutor(workers=4),
        )
        assert serial.records == parallel.records
        assert serial.points == parallel.points
        assert pickle.dumps(serial.records) == pickle.dumps(parallel.records)

    def test_parallel_chunking_preserves_order(self):
        instance_fn = default_instance(epsilon=0.3, k=3)
        specs = build_specs(GRID, trials=4, sweep_seed=2)
        chunked = run_trials(
            sim_low_protocol, instance_fn, specs,
            executor=ParallelExecutor(workers=3, chunk_size=1),
        )
        reference = run_trials(
            sim_low_protocol, instance_fn, specs,
            executor=SerialExecutor(),
        )
        assert chunked == reference
        assert [r.point_index for r in chunked] == [
            s.point_index for s in specs
        ]

    def test_closures_survive_parallel_execution(self):
        """Protocol/instance closures never pickle — fork shares them."""
        epsilon = 0.3  # captured by both closures below

        def instance(n, d, seed):
            return default_instance(epsilon=epsilon, k=3)(n, d, seed)

        result = run_sweep(
            lambda p, s: find_triangle_sim_low(
                p, SimLowParams(epsilon=epsilon, delta=0.2), seed=s
            ),
            instance, GRID, trials=2, seed=3,
            executor=ParallelExecutor(workers=2),
        )
        assert len(result.records) == 4

    def test_workers_knob_equivalence(self):
        instance_fn = default_instance(epsilon=0.3, k=3)
        by_knob = run_sweep(
            sim_low_protocol, instance_fn, GRID, trials=2, seed=4, workers=2
        )
        serial = run_sweep(
            sim_low_protocol, instance_fn, GRID, trials=2, seed=4, workers=1
        )
        assert by_knob.records == serial.records


class TestSpawnExecutor:
    """The executor contract must hold without fork (Windows, macOS
    defaults, Python 3.14's default change): records byte-identical to
    serial, with the task shipped pickled through the pool initializer."""

    def test_spawn_records_byte_identical_to_serial(self):
        specs = build_specs(GRID, trials=2, sweep_seed=21)
        serial = run_trials(
            spawn_helpers.spawn_protocol, spawn_helpers.spawn_instance,
            specs, executor=SerialExecutor(),
        )
        spawned = run_trials(
            spawn_helpers.spawn_protocol, spawn_helpers.spawn_instance,
            specs,
            executor=ParallelExecutor(workers=2, start_method="spawn"),
        )
        assert pickle.dumps(spawned) == pickle.dumps(serial)

    def test_spawn_falls_back_to_serial_on_unpicklable_task(self):
        epsilon = 0.3  # captured: the closures below never pickle

        def closure_instance(n, d, seed):
            return default_instance(epsilon=epsilon, k=3)(n, d, seed)

        specs = build_specs(GRID, trials=2, sweep_seed=22)
        via_spawn = run_trials(
            lambda p, s: sim_low_protocol(p, s), closure_instance, specs,
            executor=ParallelExecutor(workers=2, start_method="spawn"),
        )
        serial = run_trials(
            sim_low_protocol, closure_instance, specs,
            executor=SerialExecutor(),
        )
        assert via_spawn == serial

    def test_unavailable_start_method_rejected(self):
        available = multiprocessing.get_all_start_methods()
        assert "spawn" in available  # spawn exists on every platform
        with pytest.raises(ValueError):
            ParallelExecutor(workers=2, start_method="threads")

    def test_default_instance_builder_pickles(self):
        builder = default_instance(epsilon=0.25, k=4)
        clone = pickle.loads(pickle.dumps(builder))
        assert clone(100, 4.0, 7).k == 4


class TestWorkerResolution:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        assert isinstance(default_executor(None), SerialExecutor)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        executor = default_executor(None)
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(2) == 2

    def test_zero_means_all_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(0) >= 1

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            resolve_workers(None)


class TestInstanceCache:
    def test_cache_hit_across_protocols_at_shared_grid_point(self):
        """(c) two protocols at one grid point build the instance once."""
        cache = InstanceCache()
        built = []
        instance_fn = default_instance(epsilon=0.3, k=3)

        def counting_instance(n, d, seed):
            built.append((n, d, seed))
            return instance_fn(n, d, seed)

        first = run_sweep(
            sim_low_protocol, counting_instance, GRID, trials=2, seed=9,
            cache=cache, instance_key="shared",
        )
        second = run_sweep(
            lambda p, _s: sim_low_protocol(p, 0),  # a "different protocol"
            counting_instance, GRID, trials=2, seed=9,
            cache=cache, instance_key="shared",
        )
        assert len(built) == 4  # built once per (point, trial), not twice
        assert cache.hits == 4 and cache.misses == 4
        # Same instances => the deterministic protocol saw identical inputs.
        assert [r.seed for r in first.records] == [
            r.seed for r in second.records
        ]

    def test_distinct_keys_do_not_collide(self):
        cache = InstanceCache()
        instance_fn = default_instance(epsilon=0.3, k=3)
        run_sweep(sim_low_protocol, instance_fn, GRID, trials=1, seed=9,
                  cache=cache, instance_key="a")
        run_sweep(sim_low_protocol, instance_fn, GRID, trials=1, seed=9,
                  cache=cache, instance_key="b")
        assert cache.hits == 0 and cache.misses == 4

    def test_disk_tier_shares_across_cache_objects(self, tmp_path):
        instance_fn = default_instance(epsilon=0.3, k=3)
        writer = InstanceCache(disk_dir=tmp_path)
        run_sweep(sim_low_protocol, instance_fn, GRID, trials=1, seed=9,
                  cache=writer, instance_key="shared")
        reader = InstanceCache(disk_dir=tmp_path)  # fresh memory tier
        run_sweep(sim_low_protocol, instance_fn, GRID, trials=1, seed=9,
                  cache=reader, instance_key="shared")
        assert writer.misses == 2
        assert reader.hits == 2 and reader.misses == 0

    def test_lru_eviction(self):
        cache = InstanceCache(max_entries=2)
        for i in range(4):
            cache.get_or_build(("key", i), lambda i=i: i)
        assert len(cache) == 2
        assert cache.get_or_build(("key", 3), lambda: "rebuilt") == 3

    def test_validates_max_entries(self):
        with pytest.raises(ValueError):
            InstanceCache(max_entries=0)


class TestCanonicalDiskKeys:
    """Disk-tier paths must be identical across processes: ``repr`` of a
    dict/set-bearing key is insertion/hash-order dependent and objects
    with default reprs embed memory addresses."""

    DICT_KEY = ("instance", {"b": 2.5, "a": 1}, frozenset({3, 1, 2}), None)

    def test_dict_order_does_not_change_path(self, tmp_path):
        cache = InstanceCache(disk_dir=tmp_path)
        forward = cache._disk_path(("k", {"a": 1, "b": 2}))
        backward = cache._disk_path(("k", {"b": 2, "a": 1}))
        assert forward == backward

    def test_two_processes_derive_identical_paths(self, tmp_path):
        """A child interpreter (fresh hash seed) must agree on the path."""
        import os
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parent.parent)
        script = (
            "from repro.runtime.cache import InstanceCache; "
            f"c = InstanceCache(disk_dir={str(tmp_path)!r}); "
            f"print(c._disk_path({self.DICT_KEY!r}).name)"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src
        env["PYTHONHASHSEED"] = "54321"  # scrambles set/dict hash order
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        )
        parent = InstanceCache(disk_dir=tmp_path)
        assert out.stdout.strip() == parent._disk_path(self.DICT_KEY).name

    def test_unencodable_key_rejected_loudly(self, tmp_path):
        class Opaque:
            pass

        cache = InstanceCache(disk_dir=tmp_path)
        with pytest.raises(TypeError, match="canonical encoding"):
            cache.get_or_build(("k", Opaque()), lambda: 1)

    def test_memory_tier_unaffected_by_encoding(self):
        """No disk dir => keys only need hashability, as before."""
        cache = InstanceCache()
        token = object()

        class Hashable:
            pass

        assert cache.get_or_build(("k", Hashable()), lambda: token) is token


class TestTrialTask:
    def test_result_records_spec_coordinates(self):
        task = TrialTask(
            default_instance(epsilon=0.3, k=3), sim_low_protocol
        )
        spec = build_specs(GRID, trials=1, sweep_seed=0)[1]
        result = task(spec)
        assert isinstance(result, TrialResult)
        assert (result.point_index, result.trial_index) == (1, 0)
        assert result.seed == spec.seed
        assert result.bits > 0

    def test_metrics_hook_lands_in_extras(self):
        def metrics(spec, partition, outcome):
            return {"k": partition.k, "bits_echo": outcome.total_bits}

        task = TrialTask(
            default_instance(epsilon=0.3, k=3), sim_low_protocol,
            metrics=metrics,
        )
        result = task(TrialSpec(0, 0, 200, 4.0, 3, seed=derive_seed(0, 0, 0)))
        assert result.extras["k"] == 3
        assert result.extras["bits_echo"] == result.bits

    def test_k_aware_instance_builder(self):
        def instance(n, d, seed, k):
            return default_instance(epsilon=0.3, k=k)(n, d, seed)

        task = TrialTask(instance, sim_low_protocol)
        spec = TrialSpec(0, 0, 200, 4.0, 4, seed=derive_seed(0, 0, 0))
        assert task.build_instance(spec).k == 4

"""The fault-tolerant sweep runtime: supervision, faults, kill-and-resume.

The acceptance contract of the supervised executor paths:

* supervision (retry / journal / fault injection) engaged with no
  faults produces records byte-identical to the plain paths;
* injected raise / hang / kill faults are retried deterministically and
  surface as structured error records at worst — never a dead sweep;
* a sweep killed mid-run (a real ``os._exit`` in a subprocess driver)
  leaves a journal whose resume completes the sweep with records
  byte-identical to an uninterrupted run, under serial and parallel
  executors alike.

The trial functions live at module level so spawn-method pools can
import them by reference (same convention as ``spawn_helpers``).
"""

import os
import pickle
import shutil
import subprocess
import sys
from pathlib import Path
from typing import NamedTuple

import pytest

import spawn_helpers
from repro.runtime import (
    Fault,
    FaultPlan,
    InjectedFault,
    InstanceCache,
    ParallelExecutor,
    RetryPolicy,
    RunJournal,
    SerialExecutor,
    TrialTask,
    build_specs,
    run_trials,
)

GRID = [(10, 2.0, 2), (20, 3.0, 2), (30, 4.0, 3)]
TRIALS = 3
SWEEP_SEED = 7

_SRC = str(Path(__file__).resolve().parent.parent / "src")
_TESTS = str(Path(__file__).resolve().parent)


class Outcome(NamedTuple):
    total_bits: float
    found: bool


def tiny_protocol(instance, seed):
    return Outcome(float(instance[0] + seed % 5), seed % 2 == 0)


def tiny_instance(n, d, seed):
    return (n, d, seed)


def exploding_protocol(instance, seed):
    raise AssertionError("protocol must not run — journal should cover this")


def build_grid_specs():
    return build_specs(GRID, trials=TRIALS, sweep_seed=SWEEP_SEED)


def baseline_records():
    return run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                      workers=1)


def fast_retry(**overrides):
    defaults = dict(max_attempts=3, backoff_base=0.0)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=-2.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_pool_rebuilds=-1)

    def test_backoff_schedule(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.4)


class TestFaultPlan:
    def test_kind_validated(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(kind="explode")

    def test_attempt_indexed_matching(self):
        fault = Fault(kind="raise", point_index=1, trial_index=2, attempts=2)
        spec = build_grid_specs()[TRIALS + 2]  # point 1, trial 2
        assert fault.matches(spec, attempt=0)
        assert fault.matches(spec, attempt=1)
        assert not fault.matches(spec, attempt=2)  # budget exhausted
        other = build_grid_specs()[0]
        assert not fault.matches(other, attempt=0)

    def test_wildcards(self):
        fault = Fault(kind="raise")
        for spec in build_grid_specs():
            assert fault.matches(spec, attempt=0)

    def test_apply_raises_deterministic_message(self):
        plan = FaultPlan([Fault(kind="raise", point_index=0, trial_index=0)])
        spec = build_grid_specs()[0]
        with pytest.raises(InjectedFault) as excinfo:
            plan.apply(spec, attempt=0)
        assert "point=0" in str(excinfo.value)
        plan.apply(spec, attempt=1)  # budget spent: no-op

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan([Fault(kind="raise")])


class TestSupervisedIdentity:
    """Supervision engaged, no faults: records byte-identical to plain."""

    def test_serial_per_trial(self):
        base = baseline_records()
        supervised = run_trials(tiny_protocol, tiny_instance,
                                build_grid_specs(), workers=1,
                                retry=fast_retry())
        assert pickle.dumps(supervised) == pickle.dumps(base)
        assert all(r.ok for r in supervised)

    def test_serial_batched(self):
        base = baseline_records()
        supervised = run_trials(tiny_protocol, tiny_instance,
                                build_grid_specs(), workers=1,
                                retry=fast_retry(), batch=True)
        assert pickle.dumps(supervised) == pickle.dumps(base)

    def test_parallel_per_trial(self):
        base = baseline_records()
        supervised = run_trials(
            tiny_protocol, tiny_instance, build_grid_specs(),
            executor=ParallelExecutor(workers=2, start_method="fork"),
            retry=fast_retry(),
        )
        assert pickle.dumps(supervised) == pickle.dumps(base)

    def test_parallel_batched(self):
        base = baseline_records()
        supervised = run_trials(
            tiny_protocol, tiny_instance, build_grid_specs(),
            executor=ParallelExecutor(workers=2, start_method="fork"),
            retry=fast_retry(), batch=True,
        )
        assert pickle.dumps(supervised) == pickle.dumps(base)

    def test_legacy_paths_untouched_without_knobs(self):
        # No retry/journal/resume/fault_plan: the historical record
        # shape, ok status everywhere, error None everywhere.
        records = baseline_records()
        assert all(r.status == "ok" and r.error is None for r in records)


class TestFaultRecoverySerial:
    def test_raise_fault_retried_to_success(self):
        base = baseline_records()
        plan = FaultPlan([Fault(kind="raise", point_index=0, trial_index=1)])
        records = run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                             workers=1, fault_plan=plan, retry=fast_retry())
        assert pickle.dumps(records) == pickle.dumps(base)

    def test_permanent_fault_surfaces_structured_error(self):
        plan = FaultPlan([
            Fault(kind="raise", point_index=0, trial_index=1, attempts=99),
        ])
        records = run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                             workers=1, fault_plan=plan,
                             retry=fast_retry(max_attempts=2))
        bad = [r for r in records if not r.ok]
        assert len(bad) == 1
        assert bad[0].status == "error"
        assert "InjectedFault" in bad[0].error
        assert bad[0].point_index == 0 and bad[0].trial_index == 1
        # The sweep's other records are untouched.
        assert sum(r.ok for r in records) == len(records) - 1

    def test_hang_fault_timed_out_and_retried(self):
        base = baseline_records()
        plan = FaultPlan([
            Fault(kind="hang", point_index=1, trial_index=0,
                  hang_seconds=10.0),
        ])
        records = run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                             workers=1, fault_plan=plan,
                             retry=fast_retry(timeout=0.3))
        assert pickle.dumps(records) == pickle.dumps(base)

    def test_permanent_hang_surfaces_timeout_status(self):
        plan = FaultPlan([
            Fault(kind="hang", point_index=1, trial_index=0, attempts=99,
                  hang_seconds=10.0),
        ])
        records = run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                             workers=1, fault_plan=plan,
                             retry=fast_retry(max_attempts=2, timeout=0.3))
        bad = [r for r in records if not r.ok]
        assert len(bad) == 1
        assert bad[0].status == "timeout"
        assert "timed out" in bad[0].error

    def test_kill_fault_downgrades_in_process(self):
        # A kill fault executing in the driver would take the sweep
        # down; it must downgrade to raise and be retried like one.
        base = baseline_records()
        plan = FaultPlan([Fault(kind="kill", point_index=0, trial_index=0)])
        records = run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                             workers=1, fault_plan=plan, retry=fast_retry())
        assert pickle.dumps(records) == pickle.dumps(base)

    def test_instance_build_failure_captured(self):
        def broken_instance(n, d, seed):
            raise RuntimeError("generator corrupted")

        records = run_trials(tiny_protocol, broken_instance,
                             build_grid_specs(), workers=1,
                             retry=fast_retry(max_attempts=2))
        assert all(not r.ok for r in records)
        assert all("generator corrupted" in r.error for r in records)


class TestFaultRecoveryParallel:
    def executor(self):
        return ParallelExecutor(workers=2, start_method="fork")

    def test_raise_fault_retried(self):
        base = baseline_records()
        plan = FaultPlan([Fault(kind="raise", point_index=1, trial_index=1)])
        records = run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                             executor=self.executor(), fault_plan=plan,
                             retry=fast_retry())
        assert pickle.dumps(records) == pickle.dumps(base)

    def test_kill_fault_rebuilds_pool_and_recovers(self):
        # The worker hard-exits (BrokenProcessPool); the supervisor must
        # rebuild the pool and the retry must succeed.
        base = baseline_records()
        plan = FaultPlan([Fault(kind="kill", point_index=0, trial_index=0)])
        records = run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                             executor=self.executor(), fault_plan=plan,
                             retry=fast_retry())
        assert pickle.dumps(records) == pickle.dumps(base)

    def test_hang_fault_watchdog_kills_pool_and_recovers(self):
        base = baseline_records()
        plan = FaultPlan([
            Fault(kind="hang", point_index=2, trial_index=0,
                  hang_seconds=30.0),
        ])
        records = run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                             executor=self.executor(), fault_plan=plan,
                             retry=fast_retry(timeout=1.0))
        assert pickle.dumps(records) == pickle.dumps(base)

    def test_permanent_kill_never_kills_the_sweep(self):
        # Rebuild budget exhausted -> degradation to serial, where the
        # kill downgrades to raise and finally surfaces as an error
        # record.  The sweep itself must always complete.
        plan = FaultPlan([
            Fault(kind="kill", point_index=0, trial_index=0, attempts=99),
        ])
        records = run_trials(
            tiny_protocol, tiny_instance, build_grid_specs(),
            executor=self.executor(), fault_plan=plan,
            retry=fast_retry(max_attempts=2, max_pool_rebuilds=1),
        )
        assert len(records) == len(build_grid_specs())
        bad = [r for r in records if not r.ok]
        assert bad  # the faulted trial failed for good...
        assert all(r.error for r in bad)  # ...with structured errors

    def test_batched_fault_isolates_to_one_trial(self):
        base = baseline_records()
        plan = FaultPlan([Fault(kind="raise", point_index=1, trial_index=2)])
        records = run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                             executor=self.executor(), fault_plan=plan,
                             retry=fast_retry(), batch=True)
        assert pickle.dumps(records) == pickle.dumps(base)


class TestJournalResume:
    def test_journal_records_every_ok_trial(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        specs = build_grid_specs()
        run_trials(tiny_protocol, tiny_instance, specs, workers=1,
                   journal=str(path))
        journal = RunJournal(path)
        assert len(journal) == len(specs)
        journal.close()

    def test_resume_skips_recorded_specs(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        base = baseline_records()
        run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                   workers=1, journal=str(path))
        # The journal covers everything: a resumed run must not execute
        # the protocol at all.
        resumed = run_trials(exploding_protocol, tiny_instance,
                             build_grid_specs(), workers=1,
                             journal=str(path), resume=True)
        assert pickle.dumps(resumed) == pickle.dumps(base)

    def test_partial_journal_resume_byte_identical(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        base = baseline_records()
        specs = build_grid_specs()
        with RunJournal(path) as journal:
            for spec, result in zip(specs[:4], base[:4]):
                journal.record(spec, result)
        for executor in (SerialExecutor(),
                         ParallelExecutor(workers=2, start_method="fork")):
            copy = tmp_path / f"{type(executor).__name__}.jsonl"
            shutil.copy(path, copy)
            resumed = run_trials(tiny_protocol, tiny_instance, specs,
                                 executor=executor, journal=str(copy),
                                 resume=True)
            assert pickle.dumps(resumed) == pickle.dumps(base)

    def test_resume_without_journal_rejected(self):
        with pytest.raises(ValueError, match="resume"):
            run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                       workers=1, resume=True)

    def test_open_journal_object_accepted_and_left_open(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with RunJournal(path, label="tiny") as journal:
            run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                       workers=1, journal=journal)
            assert len(journal) == len(build_grid_specs())
            journal.record(build_grid_specs()[0],
                           baseline_records()[0])  # handle still usable

    def test_failed_trials_not_journaled_then_healed_on_resume(
            self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        base = baseline_records()
        plan = FaultPlan([
            Fault(kind="raise", point_index=0, trial_index=1, attempts=99),
        ])
        first = run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                           workers=1, journal=str(path), fault_plan=plan,
                           retry=fast_retry(max_attempts=2))
        assert sum(not r.ok for r in first) == 1
        journal = RunJournal(path)
        assert len(journal) == len(build_grid_specs()) - 1
        journal.close()
        # Resume without the fault: only the failed spec re-runs, and
        # the healed sweep matches the never-faulted one byte for byte.
        healed = run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                            workers=1, journal=str(path), resume=True)
        assert pickle.dumps(healed) == pickle.dumps(base)


_INTERRUPTED_DRIVER = """
import os, sys
from repro.runtime.spec import build_specs
from repro.runtime.executor import run_trials
from test_fault_tolerance import GRID, TRIALS, SWEEP_SEED, tiny_instance

kill_after = int(sys.argv[1])
journal_path = sys.argv[2]
calls = {"count": 0}

def dying_protocol(instance, seed):
    from test_fault_tolerance import Outcome
    if calls["count"] >= kill_after:
        os._exit(9)  # hard crash, no cleanup, mid-sweep
    calls["count"] += 1
    return Outcome(float(instance[0] + seed % 5), seed % 2 == 0)

specs = build_specs(GRID, trials=TRIALS, sweep_seed=SWEEP_SEED)
run_trials(dying_protocol, tiny_instance, specs, workers=1,
           journal=journal_path)
"""


class TestKillAndResumeAcceptance:
    """The headline guarantee: crash mid-sweep, resume, identical records."""

    def interrupt(self, tmp_path, kill_after):
        path = tmp_path / "interrupted.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([_SRC, _TESTS])
        process = subprocess.run(
            [sys.executable, "-c", _INTERRUPTED_DRIVER,
             str(kill_after), str(path)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert process.returncode == 9, process.stderr  # really crashed
        return path

    def test_crashed_sweep_resumes_byte_identical(self, tmp_path):
        base = baseline_records()
        path = self.interrupt(tmp_path, kill_after=4)
        journal = RunJournal(path)
        assert len(journal) == 4  # exactly the trials that completed
        journal.close()
        for name, executor in (
            ("serial", SerialExecutor()),
            ("parallel", ParallelExecutor(workers=2, start_method="fork")),
        ):
            copy = tmp_path / f"resume-{name}.jsonl"
            shutil.copy(path, copy)
            resumed = run_trials(tiny_protocol, tiny_instance,
                                 build_grid_specs(), executor=executor,
                                 journal=str(copy), resume=True)
            assert pickle.dumps(resumed) == pickle.dumps(base), name

    def test_crash_during_first_trial_resumes_from_nothing(self, tmp_path):
        base = baseline_records()
        path = self.interrupt(tmp_path, kill_after=0)
        journal = RunJournal(path)
        assert len(journal) == 0
        journal.close()
        resumed = run_trials(tiny_protocol, tiny_instance, build_grid_specs(),
                             workers=1, journal=str(path), resume=True)
        assert pickle.dumps(resumed) == pickle.dumps(base)

    def test_parallel_crash_heals_on_resume(self, tmp_path):
        # The parallel interruption: a kill fault with no retry budget
        # downgrades the run to structured errors; resuming without the
        # fault completes the sweep byte-identically.
        base = baseline_records()
        path = tmp_path / "parallel.jsonl"
        plan = FaultPlan([
            Fault(kind="kill", point_index=1, trial_index=1, attempts=99),
        ])
        first = run_trials(
            tiny_protocol, tiny_instance, build_grid_specs(),
            executor=ParallelExecutor(workers=2, start_method="fork"),
            journal=str(path), fault_plan=plan,
            retry=RetryPolicy(max_attempts=1, backoff_base=0.0,
                              max_pool_rebuilds=1),
        )
        assert any(not r.ok for r in first)
        resumed = run_trials(
            tiny_protocol, tiny_instance, build_grid_specs(),
            executor=ParallelExecutor(workers=2, start_method="fork"),
            journal=str(path), resume=True,
        )
        assert pickle.dumps(resumed) == pickle.dumps(base)


class TestSpawnAndFallback:
    def test_repro_start_method_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert ParallelExecutor(workers=2)._resolve_start_method() == "spawn"
        monkeypatch.setenv("REPRO_START_METHOD", "bogus")
        with pytest.raises(ValueError, match="REPRO_START_METHOD"):
            ParallelExecutor(workers=2)._resolve_start_method()
        monkeypatch.delenv("REPRO_START_METHOD")
        assert ParallelExecutor(
            workers=2, start_method="fork"
        )._resolve_start_method() == "fork"

    def test_supervised_spawn_byte_identical_with_fault(self):
        # Module-level callables ship to spawn workers through the pool
        # initializer; the fault plan rides on the task and must fire
        # (and be retried) identically to serial execution.
        specs = build_grid_specs()
        base = run_trials(tiny_protocol, tiny_instance, specs, workers=1)
        plan = FaultPlan([Fault(kind="raise", point_index=0, trial_index=0)])
        records = run_trials(
            tiny_protocol, tiny_instance, specs,
            executor=ParallelExecutor(workers=2, start_method="spawn"),
            fault_plan=plan, retry=fast_retry(),
        )
        assert pickle.dumps(records) == pickle.dumps(base)

    def test_unpicklable_task_warns_and_falls_back(self, caplog):
        # Satellite: the spawn-method serial fallback must be loud.
        def closure_protocol(instance, seed):  # not importable: no pickle
            return tiny_protocol(instance, seed)

        specs = build_grid_specs()
        base = run_trials(tiny_protocol, tiny_instance, specs, workers=1)
        with caplog.at_level("WARNING", logger="repro.runtime.executor"):
            records = run_trials(
                closure_protocol, tiny_instance, specs,
                executor=ParallelExecutor(workers=2, start_method="spawn"),
            )
        assert pickle.dumps(records) == pickle.dumps(base)
        warnings = [r for r in caplog.records
                    if "does not pickle" in r.message]
        assert warnings, "fallback must emit a warning"
        assert "closure_protocol" in warnings[0].message

    def test_unpicklable_task_warns_on_supervised_path(self, caplog):
        def closure_protocol(instance, seed):
            return tiny_protocol(instance, seed)

        specs = build_grid_specs()
        base = run_trials(tiny_protocol, tiny_instance, specs, workers=1)
        with caplog.at_level("WARNING", logger="repro.runtime.executor"):
            records = run_trials(
                closure_protocol, tiny_instance, specs,
                executor=ParallelExecutor(workers=2, start_method="spawn"),
                retry=fast_retry(),
            )
        assert pickle.dumps(records) == pickle.dumps(base)
        assert any("does not pickle" in r.message for r in caplog.records)


class TestCacheQuarantine:
    def build_value(self, cache, key):
        return cache.get_or_build(key, lambda: {"graph": list(range(50))})

    def test_truncated_pickle_quarantined_and_rebuilt(self, tmp_path, caplog):
        key = ("far", 100, 4.0, 3, 11)
        writer = InstanceCache(disk_dir=tmp_path)
        value = self.build_value(writer, key)
        pkl = next(tmp_path.glob("*.pkl"))
        pkl.write_bytes(pkl.read_bytes()[:10])  # torn write artifact
        reader = InstanceCache(disk_dir=tmp_path)  # fresh memory tier
        with caplog.at_level("WARNING", logger="repro.runtime.cache"):
            rebuilt = self.build_value(reader, key)
        assert rebuilt == value
        assert reader.stats()["quarantined"] == 1
        assert reader.stats()["builds"] == 1
        assert any("quarantined" in r.message for r in caplog.records)
        assert list(tmp_path.glob("*.corrupt"))  # kept for post-mortem
        # The quarantined file no longer shadows the rebuilt pickle.
        fresh = InstanceCache(disk_dir=tmp_path)
        assert self.build_value(fresh, key) == value
        assert fresh.stats()["quarantined"] == 0
        assert fresh.stats()["builds"] == 0

    def test_garbage_bytes_quarantined(self, tmp_path):
        key = ("bm", 24, 0.0, 1, 5)
        writer = InstanceCache(disk_dir=tmp_path)
        self.build_value(writer, key)
        pkl = next(tmp_path.glob("*.pkl"))
        pkl.write_bytes(b"not a pickle at all")
        reader = InstanceCache(disk_dir=tmp_path)
        assert self.build_value(reader, key) == {"graph": list(range(50))}
        assert reader.stats()["quarantined"] == 1

    def test_clear_resets_quarantine_counter(self, tmp_path):
        cache = InstanceCache(disk_dir=tmp_path)
        self.build_value(cache, ("x", 1))
        next(tmp_path.glob("*.pkl")).write_bytes(b"junk")
        fresh = InstanceCache(disk_dir=tmp_path)
        self.build_value(fresh, ("x", 1))
        assert fresh.stats()["quarantined"] == 1
        fresh.clear()
        assert fresh.stats()["quarantined"] == 0


class TestSweepIntegration:
    def test_run_sweep_counts_errors_and_survives(self, tmp_path):
        from repro.analysis.experiments import run_sweep

        plan = FaultPlan([
            Fault(kind="raise", point_index=0, trial_index=0, attempts=99),
        ])
        sweep = run_sweep(
            spawn_helpers.spawn_protocol, spawn_helpers.spawn_instance,
            [(60, 3.0, 3), (80, 3.0, 3)], trials=2, seed=5, workers=1,
            fault_plan=plan, retry=fast_retry(max_attempts=2),
        )
        assert sweep.points[0].errors == 1
        assert sweep.points[1].errors == 0
        assert len(sweep.records) == 4

    def test_run_sweep_journal_resume(self, tmp_path):
        from repro.analysis.experiments import run_sweep

        grid = [(60, 3.0, 3)]
        path = tmp_path / "sweep.jsonl"
        base = run_sweep(spawn_helpers.spawn_protocol,
                         spawn_helpers.spawn_instance,
                         grid, trials=2, seed=5, workers=1)
        first = run_sweep(spawn_helpers.spawn_protocol,
                          spawn_helpers.spawn_instance,
                          grid, trials=2, seed=5, workers=1,
                          journal=str(path))
        resumed = run_sweep(spawn_helpers.spawn_protocol,
                            spawn_helpers.spawn_instance,
                            grid, trials=2, seed=5, workers=1,
                            journal=str(path), resume=True)
        assert pickle.dumps(base.records) == pickle.dumps(first.records)
        assert pickle.dumps(base.records) == pickle.dumps(resumed.records)
        assert base.points == resumed.points


class TestSupervisedTaskUnits:
    def test_run_supervised_captures_metrics_failure(self):
        def bad_metrics(spec, instance, outcome):
            raise KeyError("metrics bug")

        task = TrialTask(tiny_instance, tiny_protocol, metrics=bad_metrics)
        spec = build_grid_specs()[0]
        result = task.run_supervised(spec)
        assert not result.ok
        assert "metrics bug" in result.error

    def test_error_text_deterministic_across_attempts(self):
        plan = FaultPlan([
            Fault(kind="raise", point_index=0, trial_index=0, attempts=99),
        ])
        task = TrialTask(tiny_instance, tiny_protocol, fault_plan=plan)
        spec = build_grid_specs()[0]
        first = task.run_supervised(spec, attempt=1)
        second = task.run_supervised(spec, attempt=1)
        assert first == second
        assert pickle.dumps(first) == pickle.dumps(second)

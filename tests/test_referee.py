"""Differential tests: rows-union referee vs the historical set referee.

The PR 4 re-pin contract: the rows-union referee may report a *different*
triangle than the set-union referee (canonical minimum vs hash iteration
order) but must accept/reject — find a triangle or not — identically on
every message batch, because both search the same union.  Hypothesis
drives randomly generated message batches (including duplicated edges
across messages, empty messages, and non-canonical orientations) through
both referees.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.referee import (
    rows_union_subgraph_referee,
    rows_union_triangle_referee,
    set_union_subgraph_referee,
    set_union_triangle_referee,
    union_rows,
)
from repro.graphs.generators import gnd
from repro.graphs.graph import Graph
from repro.graphs.triangles import (
    find_triangle,
    find_triangle_in_rows,
    iter_triangles,
)
from repro.patterns.catalog import FOUR_CLIQUE, FOUR_CYCLE, TRIANGLE, star
from repro.patterns.matcher import is_copy_in_rows
from repro.patterns.reference import networkx_available

N = 20

MESSAGES = st.lists(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=N - 1),
            st.integers(min_value=0, max_value=N - 1),
        ).filter(lambda e: e[0] != e[1]),
        max_size=30,
    ),
    min_size=1,
    max_size=5,
)


class TestRefereeDifferential:
    @given(MESSAGES)
    @settings(max_examples=250, deadline=None)
    def test_accept_reject_identical(self, messages):
        """>= 200 hypothesis instances: both referees agree on found."""
        rows_triangle = rows_union_triangle_referee(messages, N)
        set_triangle = set_union_triangle_referee(messages)
        assert (rows_triangle is None) == (set_triangle is None)

    @given(MESSAGES)
    @settings(max_examples=100, deadline=None)
    def test_rows_triangle_is_canonical_minimum(self, messages):
        """The rows referee reports the ascending-first union triangle."""
        triangle = rows_union_triangle_referee(messages, N)
        union_graph = Graph(N)
        for message in messages:
            union_graph.add_edges(message)
        assert triangle == find_triangle(union_graph)
        if triangle is not None:
            assert triangle in set(iter_triangles(union_graph))

    @given(MESSAGES)
    @settings(max_examples=100, deadline=None)
    def test_union_rows_matches_graph_rows(self, messages):
        union_graph = Graph(N)
        for message in messages:
            union_graph.add_edges(message)
        assert union_rows(messages, N) == union_graph.adjacency_rows()


class TestFindTriangleInRows:
    def test_matches_graph_search(self):
        for seed in range(6):
            graph = gnd(60, 5.0, seed=seed)
            assert find_triangle_in_rows(graph.adjacency_rows()) == \
                find_triangle(graph)

    def test_empty_rows(self):
        assert find_triangle_in_rows([]) is None
        assert find_triangle_in_rows([0] * 10) is None

    def test_single_triangle(self):
        graph = Graph(5, [(1, 3), (1, 4), (3, 4)])
        assert find_triangle_in_rows(graph.adjacency_rows()) == (1, 3, 4)


class TestSubgraphRefereeDifferential:
    """The H generalization of the accept/reject contract: the rows
    referee (mask matcher) and the historical set[Edge]+VF2 referee must
    agree on found for every pattern and message batch."""

    @pytest.mark.skipif(not networkx_available(),
                        reason="optional reference dep networkx missing")
    @given(MESSAGES, st.sampled_from(
        [TRIANGLE, FOUR_CLIQUE, FOUR_CYCLE, star(3)]
    ))
    @settings(max_examples=150, deadline=None)
    def test_accept_reject_identical(self, messages, pattern):
        rows_copy = rows_union_subgraph_referee(messages, N, pattern)
        set_copy = set_union_subgraph_referee(messages, pattern)
        assert (rows_copy is None) == (set_copy is None)
        if rows_copy is not None:
            rows = union_rows(messages, N)
            assert is_copy_in_rows(rows, pattern, rows_copy)
            assert is_copy_in_rows(rows, pattern, set_copy)

    @given(MESSAGES)
    @settings(max_examples=100, deadline=None)
    def test_k3_referee_matches_triangle_referee(self, messages):
        """On H = K3 both rows referees report the *same* triangle: the
        matcher's canonical-first K3 image, sorted, is the triangle
        scan's ascending-first triple."""
        copy = rows_union_subgraph_referee(messages, N, TRIANGLE)
        triangle = rows_union_triangle_referee(messages, N)
        assert (copy is None) == (triangle is None)
        if copy is not None:
            assert tuple(sorted(copy)) == triangle

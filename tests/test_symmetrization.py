"""Tests for the Theorem 4.15 symmetrization lift."""

import pytest

from repro.comm.encoding import edge_bits
from repro.comm.players import make_players
from repro.comm.simultaneous import run_simultaneous
from repro.lowerbounds.distributions import MuDistribution
from repro.lowerbounds.symmetrization import (
    embed,
    sample_eta,
    verify_cost_identity,
)


def sketch_protocol(max_edges: int):
    def run(partition, seed):
        players = make_players(partition)
        n = partition.graph.n
        return run_simultaneous(
            players,
            message_fn=lambda p, _: sorted(p.edges)[:max_edges],
            message_bits=lambda edges: max(1, len(edges) * edge_bits(n)),
            referee_fn=lambda messages, _: None,
        )

    return run


class TestEmbed:
    @pytest.fixture
    def sample(self):
        return MuDistribution(part_size=12, gamma=1.0).sample(seed=1)

    def test_special_players_get_alice_bob(self, sample):
        partition = embed(0, 2, sample, k=5)
        assert partition.views[0] == sample.alice_edges
        assert partition.views[2] == sample.bob_edges

    def test_others_get_charlie(self, sample):
        partition = embed(0, 2, sample, k=5)
        for player in (1, 3, 4):
            assert partition.views[player] == sample.charlie_edges

    def test_covers_graph(self, sample):
        partition = embed(1, 2, sample, k=4)
        union = set()
        for view in partition.views:
            union.update(view)
        assert union == sample.graph.edge_set()

    def test_last_player_never_special(self, sample):
        with pytest.raises(ValueError):
            embed(0, 4, sample, k=5)

    def test_distinct_specials_required(self, sample):
        with pytest.raises(ValueError):
            embed(1, 1, sample, k=5)

    def test_k_at_least_three(self, sample):
        with pytest.raises(ValueError):
            embed(0, 1, sample, k=2)


class TestSampleEta:
    def test_special_players_valid(self):
        mu = MuDistribution(part_size=10, gamma=1.0)
        for seed in range(5):
            partition, i, j = sample_eta(mu, k=6, seed=seed)
            assert i != j
            assert i < 5 and j < 5
            assert partition.k == 6


class TestCostIdentity:
    def test_ratio_matches_two_over_k(self):
        mu = MuDistribution(part_size=15, gamma=1.0)
        for k in (4, 8):
            report = verify_cost_identity(
                mu, k, sketch_protocol(8), trials=60, seed=1
            )
            assert report.predicted_ratio == pytest.approx(2.0 / k)
            assert report.relative_error < 0.25, (
                f"k={k}: measured {report.measured_ratio:.4f} vs "
                f"{report.predicted_ratio:.4f}"
            )

    def test_exact_for_constant_size_messages(self):
        # With every player sending exactly the same number of bits, the
        # identity holds with zero variance.
        def constant_protocol(partition, seed):
            players = make_players(partition)
            return run_simultaneous(
                players,
                message_fn=lambda p, _: 0,
                message_bits=lambda _: 10,
                referee_fn=lambda messages, _: None,
            )

        mu = MuDistribution(part_size=8, gamma=1.0)
        report = verify_cost_identity(
            mu, 5, constant_protocol, trials=10, seed=2
        )
        assert report.measured_ratio == pytest.approx(2.0 / 5)

    def test_trials_validated(self):
        mu = MuDistribution(part_size=8)
        with pytest.raises(ValueError):
            verify_cost_identity(mu, 4, sketch_protocol(4), trials=0)

"""Module-level trial callables for the spawn-executor tests.

Spawn-method process pools receive the active task pickled through the
pool initializer; pickling a function serialises only its module-qualname
reference, so these callables must live at module level in an importable
module (closures defined inside a test body would not survive the trip).
"""

from __future__ import annotations

from repro.analysis.experiments import default_instance
from repro.core.simultaneous_low import SimLowParams, find_triangle_sim_low

spawn_instance = default_instance(epsilon=0.3, k=3)


def spawn_protocol(partition, seed):
    return find_triangle_sim_low(
        partition, SimLowParams(epsilon=0.3, delta=0.2), seed=seed
    )
